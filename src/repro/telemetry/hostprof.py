"""Host-side wall-clock profiler — where does simulation time go?

The simulated clock is free; the host clock is not.  ``HostProfiler``
wraps the handful of call sites that dominate a run's wall-clock —
the kernel tick, the mesh backends' step/commit, the tiles'
``_pump_*`` phases and message handlers, and the packet codecs — and
attributes elapsed host time to named buckets with *exclusive* (self)
accounting: time spent inside a nested timed call is charged to the
inner bucket only.

Instrumentation is instance-level wherever possible (``sim.tick``,
``tile._pump_eject`` shadow the class attributes on the profiled
objects only); the packet codecs are module-level functions and
header-class methods, so those are patched at class/module scope
while the profiler is installed and restored on ``uninstall()`` —
profile one design at a time.

Like every telemetry surface here, the null path costs nothing: a
profiler you never ``install()`` touches no code path at all.

Usage::

    prof = HostProfiler().install(design)
    design.sim.run(100_000)
    prof.uninstall()
    print(prof.format_report())
"""

from __future__ import annotations

from collections.abc import Callable
from time import perf_counter


class _Bucket:
    __slots__ = ("calls", "total_s", "self_s")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.self_s = 0.0


class HostProfiler:
    """Attribute host wall-clock to simulation phases.

    ``buckets`` maps phase names ("kernel.tick", "tiles.pump_process",
    "packet.codec", ...) to cumulative inclusive/exclusive seconds and
    call counts.  ``report()`` returns the structured view;
    ``format_report()`` renders it as a table sorted by self time.
    """

    def __init__(self) -> None:
        self.buckets: dict[str, _Bucket] = {}
        # (owner, attribute, original, is_instance) patches to undo.
        self._patches: list[tuple[object, str, object, bool]] = []
        # Active-call stack for exclusive-time accounting: each frame
        # is [bucket_name, child_seconds].
        self._stack: list[list] = []
        self.installed = False

    # -- timing core --------------------------------------------------------

    def _timed(self, bucket_name: str,
               fn: Callable) -> Callable:
        bucket = self.buckets.setdefault(bucket_name, _Bucket())
        stack = self._stack

        def wrapper(*args: object, **kwargs: object) -> object:
            frame = [bucket_name, 0.0]
            stack.append(frame)
            start = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                elapsed = perf_counter() - start
                stack.pop()
                bucket.calls += 1
                bucket.total_s += elapsed
                bucket.self_s += elapsed - frame[1]
                if stack:
                    stack[-1][1] += elapsed

        wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
        return wrapper

    def _patch(self, owner: object, attribute: str, bucket_name: str,
               instance: bool = True) -> None:
        """Shadow ``owner.attribute`` with a timed wrapper.

        ``instance=True`` binds the wrapper on the instance (shadowing
        the class attribute for this object only); ``instance=False``
        patches the class or module attribute itself — global while
        installed, restored on ``uninstall()``.
        """
        original = getattr(owner, attribute, None)
        if original is None or getattr(original, "__wrapped__", None):
            return
        setattr(owner, attribute, self._timed(bucket_name, original))
        self._patches.append((owner, attribute, original, instance))

    # -- wiring -------------------------------------------------------------

    def install(self, design: object) -> HostProfiler:
        """Wrap the hot call sites of ``design``; returns self."""
        if self.installed:
            raise RuntimeError("HostProfiler is already installed")
        sim = design.sim
        self._patch(sim, "tick", "kernel.tick")

        mesh = getattr(design, "mesh", None)
        core = getattr(mesh, "core", None)
        if core is not None and not hasattr(core, "step"):
            # Sharded flat mesh: ``mesh.core`` is a gauge-only facade —
            # the per-band cores do the stepping, so time those.
            for band in getattr(mesh, "bands", []):
                self._patch(band.core, "step", "noc.flatmesh.step")
                self._patch(band.core, "commit", "noc.flatmesh.commit")
        elif core is not None:
            self._patch(core, "step", "noc.flatmesh.step")
            self._patch(core, "commit", "noc.flatmesh.commit")
        elif mesh is not None:
            # Covers the sharded object mesh too: its merged router map
            # iterates the same router objects the band meshes step.
            for router in mesh.routers.values():
                self._patch(router, "step", "noc.router.step")
                self._patch(router, "commit", "noc.router.commit")
            for port in getattr(mesh, "ports", {}).values():
                self._patch(port, "step", "noc.localport.step")

        # Under the flat tile backend the core's batch step absorbs the
        # fast tiles' pump bodies, so their host time lands in the
        # ``tiles_flat`` bucket; object-mode tiles (and every tile
        # under the object backend) still hit the per-tile patches.
        # A sharded design's ``ShardTileCores`` aggregate holds one
        # stepping core per populated shard.
        tile_core = getattr(design, "tile_core", None)
        if tile_core is not None:
            for inner in getattr(tile_core, "cores", [tile_core]):
                self._patch(inner, "step", "tiles_flat")

        tiles = design.tiles
        if isinstance(tiles, dict):
            tiles = tiles.values()
        for tile in tiles:
            self._patch(tile, "_pump_eject", "tiles.pump_eject")
            self._patch(tile, "_pump_process", "tiles.pump_process")
            self._patch(tile, "handle_message", "tiles.handle_message")

        self._patch_codecs()
        self.installed = True
        return self

    def _patch_codecs(self) -> None:
        """Charge header pack/parse and checksums to ``packet.codec``.

        These are classes and module functions, not per-design
        instances, so the patch is process-wide while installed.
        """
        from repro.packet import builder, checksum
        from repro.packet import ipv4 as ipv4_mod
        from repro.packet import tcp as tcp_mod
        from repro.packet import udp as udp_mod
        from repro.packet.ethernet import EthernetHeader
        from repro.packet.ipv4 import IPv4Header
        from repro.packet.tcp import TcpHeader
        from repro.packet.udp import UdpHeader

        self._patch(builder, "parse_frame", "packet.codec", instance=False)
        self._patch(builder, "build_ipv4_udp_frame", "packet.codec",
                    instance=False)
        # The header modules import ``internet_checksum`` by value, so
        # each consumer module needs its own patch — wrapping only the
        # defining module would miss every call the headers make.
        for module in (checksum, ipv4_mod, udp_mod, tcp_mod):
            self._patch(module, "internet_checksum", "packet.codec",
                        instance=False)
        # Patch plain methods only: ``unpack`` is a classmethod, and
        # re-setting a captured bound classmethod on restore would
        # break the descriptor for subclasses.
        for header_cls in (EthernetHeader, IPv4Header, UdpHeader, TcpHeader):
            self._patch(header_cls, "pack", "packet.codec", instance=False)
        for header_cls in (UdpHeader, TcpHeader):
            self._patch(header_cls, "pack_with_checksum", "packet.codec",
                        instance=False)

    def uninstall(self) -> None:
        """Restore every patched call site (idempotent).

        Restoring the captured original is correct for both patch
        kinds: instance patches put back the bound method (shadowing
        the class attribute with an equivalent), class/module patches
        put back the exact function object.
        """
        for owner, attribute, original, _instance in reversed(
                self._patches):
            setattr(owner, attribute, original)
        self._patches.clear()
        self.installed = False

    # -- reporting ----------------------------------------------------------

    def report(self) -> dict:
        """Structured profile: per-bucket calls / total / self seconds.

        ``self_pct`` is each bucket's share of the summed exclusive
        time — the honest "where did the host clock go" number.
        """
        total_self = sum(b.self_s for b in self.buckets.values()) or 1.0
        out = {}
        for name in sorted(self.buckets,
                           key=lambda n: -self.buckets[n].self_s):
            bucket = self.buckets[name]
            out[name] = {
                "calls": bucket.calls,
                "total_s": bucket.total_s,
                "self_s": bucket.self_s,
                "self_pct": 100.0 * bucket.self_s / total_self,
            }
        return out

    def format_report(self) -> str:
        lines = [
            f"{'phase':<24} {'calls':>10} {'total s':>9} "
            f"{'self s':>9} {'self %':>7}",
        ]
        for name, row in self.report().items():
            lines.append(
                f"{name:<24} {row['calls']:>10} {row['total_s']:>9.4f} "
                f"{row['self_s']:>9.4f} {row['self_pct']:>6.1f}%"
            )
        return "\n".join(lines)


def profile_run(design: object,
                cycles: int) -> tuple[HostProfiler, float]:
    """Run ``design.sim`` for ``cycles`` under a fresh profiler.

    Returns ``(profiler, wall_seconds)`` with the profiler already
    uninstalled — the one-call entry point for benchmarks and the
    tutorial.
    """
    profiler = HostProfiler().install(design)
    start = perf_counter()
    try:
        design.sim.run(cycles)
    finally:
        profiler.uninstall()
    return profiler, perf_counter() - start
