"""Design-wide statistics reporting — the operator's view.

Every tile keeps the counters the control plane can export
(messages/bytes in and out, drops with reasons); every router counts
forwarded flits.  ``design_report`` renders the whole design's state as
a table, and ``design_counters`` returns the same data structured,
which is what a monitoring pipeline would scrape.

When a design ran under a :class:`repro.telemetry.trace.Tracer`,
``design_report`` accepts the tracer's :class:`MetricsWindow` and
appends the time-series view: per-window link utilization, latency
percentiles, and drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TileCounters:
    name: str
    kind: str
    coord: tuple
    messages_in: int
    messages_out: int
    bytes_in: int
    bytes_out: int
    drops: int
    drop_reasons: dict = field(default_factory=dict)


def design_counters(design) -> dict:
    """Structured counters for every tile and the NoC."""
    tiles = []
    design_tiles = design.tiles
    if isinstance(design_tiles, dict):
        design_tiles = design_tiles.values()
    for tile in design_tiles:
        tiles.append(TileCounters(
            name=tile.name,
            kind=getattr(tile, "KIND", "generic"),
            coord=tile.coord,
            messages_in=getattr(tile, "messages_in", 0),
            messages_out=getattr(tile, "messages_out", 0),
            bytes_in=getattr(tile, "bytes_in", 0),
            bytes_out=getattr(tile, "bytes_out", 0),
            drops=getattr(tile, "drops", 0),
            drop_reasons=dict(getattr(tile, "drop_reasons", {}) or {}),
        ))
    routers = {
        coord: router.flits_forwarded
        for coord, router in design.mesh.routers.items()
    }
    counters = {
        "cycle": design.sim.cycle,
        "tiles": tiles,
        "router_flits": routers,
        "total_flits": design.mesh.total_flits_forwarded,
    }
    engine = getattr(design, "fault_engine", None)
    if engine is not None:
        counters["faults"] = dict(engine.counters)
    return counters


def _render_windows(metrics) -> list[str]:
    """The per-window metrics table appended to a traced report."""
    samples = metrics.samples()
    lines = [
        "",
        f"per-window metrics (window = {metrics.window_cycles} cycles):",
        f"{'window':<16} {'pkts':>5} {'p50':>6} {'p99':>6} "
        f"{'busiest link':<22} {'util%':>6} {'drops':>6}",
    ]
    for sample in samples:
        busiest = sample.busiest_link
        if busiest is not None:
            (coord, port), util = busiest
            link = f"{coord}->{port}"
            util_text = f"{util * 100:.1f}"
        else:
            link, util_text = "-", "-"
        p50 = "-" if sample.p50 is None else f"{sample.p50:.0f}"
        p99 = "-" if sample.p99 is None else f"{sample.p99:.0f}"
        label = f"[{sample.start},{sample.end})"
        lines.append(
            f"{label:<16} "
            f"{len(sample.latencies):>5} {p50:>6} {p99:>6} "
            f"{link:<22} {util_text:>6} "
            f"{sum(sample.drops.values()):>6}"
        )
    stats = metrics.latency_stats()
    if stats["count"]:
        lines.append(
            f"packet latency: n={stats['count']} "
            f"min={stats['min']} p50={stats['p50']:.0f} "
            f"p99={stats['p99']:.0f} max={stats['max']} cycles"
        )
    return lines


def design_report(design, metrics=None) -> str:
    """A human-readable counter dump for a design.

    ``metrics`` is an optional
    :class:`repro.telemetry.trace.MetricsWindow` over the tracer the
    design ran with; when given, the windowed time-series is appended.
    """
    counters = design_counters(design)
    lines = [f"design state at cycle {counters['cycle']}",
             f"{'tile':<14} {'kind':<14} {'coord':<8} "
             f"{'msgs in':>8} {'msgs out':>9} {'bytes in':>10} "
             f"{'bytes out':>10} {'drops':>6}"]
    for tile in counters["tiles"]:
        lines.append(
            f"{tile.name:<14} {tile.kind:<14} "
            f"{str(tile.coord):<8} {tile.messages_in:>8} "
            f"{tile.messages_out:>9} {tile.bytes_in:>10} "
            f"{tile.bytes_out:>10} {tile.drops:>6}"
        )
    lines.append(f"NoC flits forwarded: {counters['total_flits']}")
    busiest = sorted(counters["router_flits"].items(),
                     key=lambda item: -item[1])[:3]
    rendered = ", ".join(f"{coord}: {flits}"
                         for coord, flits in busiest if flits)
    if rendered:
        lines.append(f"busiest routers: {rendered}")
    reason_lines = []
    for tile in counters["tiles"]:
        for reason, count in sorted(tile.drop_reasons.items(),
                                    key=lambda item: -item[1]):
            reason_lines.append(f"  {tile.name}: {reason} ({count})")
    if reason_lines:
        lines.append("drop reasons:")
        lines.extend(reason_lines)
    faults = counters.get("faults")
    if faults:
        lines.append("fault injections:")
        for kind, count in sorted(faults.items()):
            lines.append(f"  {kind}: {count}")
    if metrics is not None:
        lines.extend(_render_windows(metrics))
    return "\n".join(lines)
