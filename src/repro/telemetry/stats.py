"""Design-wide statistics reporting — the operator's view.

Every tile keeps the counters the control plane can export
(messages/bytes in and out, drops with reasons); every router counts
forwarded flits; every queue records its high-water mark.
``design_report`` renders the whole design's state as a table, and
``design_counters`` returns the same data structured, which is what a
monitoring pipeline would scrape.

When a design ran under a :class:`repro.telemetry.trace.Tracer`,
``design_report`` accepts the tracer's :class:`MetricsWindow` and
appends the time-series view: per-window link utilization, latency
percentiles (p50/p99/p999), and drops.  The table is rendered from
``MetricsWindow.to_dict()`` — the same structured source the JSON and
Prometheus exporters consume — so the human and machine views can
never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TileCounters:
    name: str
    kind: str
    coord: tuple
    messages_in: int
    messages_out: int
    bytes_in: int
    bytes_out: int
    drops: int
    drop_reasons: dict = field(default_factory=dict)
    #: Deepest the tile's ejection FIFO has ever been (committed depth).
    eject_high_water: int = 0
    #: Deepest the tile's injection-side backlog has ever been.
    tx_backlog_high_water: int = 0


def jain_index(values) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 when every flow gets an identical share (or there is nothing
    to be unfair about), approaching ``1/n`` as one flow starves the
    rest.
    """
    values = [float(v) for v in values]
    if not values:
        return 1.0
    square_sum = sum(v * v for v in values)
    if not square_sum:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


def tcp_flow_counters(flows) -> dict:
    """Per-flow TCP delivery/retransmission counters plus fairness.

    ``flows`` is a :class:`repro.tcp.flow.FlowTable`; the fairness
    index is computed over per-flow delivered bytes (received stream
    bytes if the server mostly receives, acked transmit bytes if it
    mostly sends — whichever direction carried more traffic).
    """
    from repro.tcp.flow import seq_add, seq_diff

    per_flow = []
    for flow_id in sorted(flows.rx):
        rx = flows.rx[flow_id]
        tx = flows.tx.get(flow_id)
        rx_bytes = max(0, rx.rx_stream_received)
        tx_acked = 0
        if tx is not None and tx.iss:
            tx_acked = max(0, seq_diff(rx.snd_una, seq_add(tx.iss, 1)))
        per_flow.append({
            "flow_id": flow_id,
            "four_tuple": rx.four_tuple,
            "state": rx.state.name,
            "rx_stream_bytes": rx_bytes,
            "tx_acked_bytes": tx_acked,
            "retransmits": 0 if tx is None else tx.retransmits,
            "fast_retransmits": 0 if tx is None else
            tx.fast_retransmits,
            "cwnd": 0 if tx is None else tx.cwnd,
        })
    rx_total = sum(f["rx_stream_bytes"] for f in per_flow)
    tx_total = sum(f["tx_acked_bytes"] for f in per_flow)
    key = "rx_stream_bytes" if rx_total >= tx_total else \
        "tx_acked_bytes"
    return {
        "flows": per_flow,
        "n_flows": len(per_flow),
        "rx_stream_bytes": rx_total,
        "tx_acked_bytes": tx_total,
        "retransmits": sum(f["retransmits"] for f in per_flow),
        "fast_retransmits": sum(f["fast_retransmits"]
                                for f in per_flow),
        "jain_fairness": jain_index(f[key] for f in per_flow),
    }


def design_counters(design: object) -> dict:
    """Structured counters for every tile and the NoC.

    Tolerant by design: ``design.tiles`` may be a list or a dict, and
    tiles missing any counter attribute (stub tiles, adapters) report
    zero rather than failing — a monitoring scrape must never take the
    design down.
    """
    tiles = []
    design_tiles = design.tiles
    if isinstance(design_tiles, dict):
        design_tiles = design_tiles.values()
    for tile in design_tiles:
        port = getattr(tile, "port", None)
        eject = getattr(port, "eject_fifo", None)
        tiles.append(TileCounters(
            name=tile.name,
            kind=getattr(tile, "KIND", "generic"),
            coord=tile.coord,
            messages_in=getattr(tile, "messages_in", 0),
            messages_out=getattr(tile, "messages_out", 0),
            bytes_in=getattr(tile, "bytes_in", 0),
            bytes_out=getattr(tile, "bytes_out", 0),
            drops=getattr(tile, "drops", 0),
            drop_reasons=dict(getattr(tile, "drop_reasons", {}) or {}),
            eject_high_water=getattr(eject, "high_water", 0),
            tx_backlog_high_water=getattr(
                port, "tx_backlog_high_water", 0),
        ))
    routers = {
        coord: router.flits_forwarded
        for coord, router in design.mesh.routers.items()
    }
    # Per-router high-water over the directional + local input queues:
    # both backends expose ``high_water`` on every input (StagedFifo on
    # the object mesh, ring views on the flat mesh).
    router_high_water = {}
    for coord, router in design.mesh.routers.items():
        inputs = getattr(router, "inputs", None)
        if inputs:
            router_high_water[coord] = max(
                getattr(fifo, "high_water", 0) for fifo in inputs.values())
    tile_kinds: dict[str, int] = {}
    for tile in tiles:
        tile_kinds[tile.kind] = tile_kinds.get(tile.kind, 0) + 1
    counters = {
        "cycle": design.sim.cycle,
        "backends": {
            "kernel": getattr(design.sim, "kernel", "naive"),
            "mesh": getattr(design.sim, "mesh_backend", "object"),
            "tile": getattr(design.sim, "tile_backend", "object"),
            "shards": getattr(design.sim, "shards", 1),
        },
        "tiles": tiles,
        "tile_kinds": dict(sorted(tile_kinds.items())),
        "router_flits": routers,
        "router_input_high_water": router_high_water,
        "total_flits": design.mesh.total_flits_forwarded,
    }
    engine = getattr(design, "fault_engine", None)
    if engine is not None:
        counters["faults"] = dict(engine.counters)
    flows = getattr(design, "flows", None)
    if flows is not None and hasattr(flows, "rx") and \
            hasattr(flows, "tx") and flows.rx:
        counters["tcp_flows"] = tcp_flow_counters(flows)
    return counters


def _render_windows(metrics: object) -> list[str]:
    """The per-window metrics table appended to a traced report.

    Renders from :meth:`MetricsWindow.to_dict` — the structured view
    the exporters serialise — never from private tracer state.
    """
    data = metrics.to_dict()
    lines = [
        "",
        f"per-window metrics (window = {data['window_cycles']} cycles):",
        f"{'window':<16} {'pkts':>5} {'p50':>6} {'p99':>6} {'p999':>6} "
        f"{'busiest link':<22} {'util%':>6} {'drops':>6}",
    ]

    def fmt(value: float | None) -> str:
        return "-" if value is None else f"{value:.0f}"

    for window in data["windows"]:
        link_util = window["link_util"]
        if link_util:
            link, util = max(link_util.items(), key=lambda item: item[1])
            util_text = f"{util * 100:.1f}"
        else:
            link, util_text = "-", "-"
        label = f"[{window['start']},{window['end']})"
        lines.append(
            f"{label:<16} "
            f"{window['packets']:>5} {fmt(window['p50']):>6} "
            f"{fmt(window['p99']):>6} {fmt(window['p999']):>6} "
            f"{link:<22} {util_text:>6} "
            f"{sum(window['drops'].values()):>6}"
        )
    stats = data["latency"]
    if stats["count"]:
        lines.append(
            f"packet latency: n={stats['count']} "
            f"min={stats['min']} p50={stats['p50']:.0f} "
            f"p99={stats['p99']:.0f} p999={stats['p999']:.0f} "
            f"max={stats['max']} cycles"
        )
    return lines


def design_report(design: object,
                  metrics: object | None = None) -> str:
    """A human-readable counter dump for a design.

    ``metrics`` is an optional
    :class:`repro.telemetry.trace.MetricsWindow` over the tracer the
    design ran with; when given, the windowed time-series is appended.
    """
    counters = design_counters(design)
    backends = counters["backends"]
    kinds = ", ".join(f"{kind} x{count}"
                      for kind, count in counters["tile_kinds"].items())
    lines = [f"design state at cycle {counters['cycle']}",
             f"backends: kernel={backends['kernel']} "
             f"mesh={backends['mesh']} tile={backends['tile']} "
             f"shards={backends['shards']}",
             f"tile kinds: {kinds}",
             f"{'tile':<14} {'kind':<14} {'coord':<8} "
             f"{'msgs in':>8} {'msgs out':>9} {'bytes in':>10} "
             f"{'bytes out':>10} {'drops':>6} {'ej hwm':>6} {'tx hwm':>6}"]
    for tile in counters["tiles"]:
        lines.append(
            f"{tile.name:<14} {tile.kind:<14} "
            f"{str(tile.coord):<8} {tile.messages_in:>8} "
            f"{tile.messages_out:>9} {tile.bytes_in:>10} "
            f"{tile.bytes_out:>10} {tile.drops:>6} "
            f"{tile.eject_high_water:>6} {tile.tx_backlog_high_water:>6}"
        )
    lines.append(f"NoC flits forwarded: {counters['total_flits']}")
    busiest = sorted(counters["router_flits"].items(),
                     key=lambda item: -item[1])[:3]
    rendered = ", ".join(f"{coord}: {flits}"
                         for coord, flits in busiest if flits)
    if rendered:
        lines.append(f"busiest routers: {rendered}")
    deepest = sorted(counters["router_input_high_water"].items(),
                     key=lambda item: -item[1])[:3]
    rendered = ", ".join(f"{coord}: {depth}"
                         for coord, depth in deepest if depth)
    if rendered:
        lines.append(f"deepest router input queues: {rendered}")
    reason_lines = []
    for tile in counters["tiles"]:
        for reason, count in sorted(tile.drop_reasons.items(),
                                    key=lambda item: -item[1]):
            reason_lines.append(f"  {tile.name}: {reason} ({count})")
    if reason_lines:
        lines.append("drop reasons:")
        lines.extend(reason_lines)
    faults = counters.get("faults")
    if faults:
        lines.append("fault injections:")
        for kind, count in sorted(faults.items()):
            lines.append(f"  {kind}: {count}")
    tcp = counters.get("tcp_flows")
    if tcp:
        lines.append(
            f"tcp flows: {tcp['n_flows']} "
            f"(jain fairness {tcp['jain_fairness']:.3f}, "
            f"retransmits {tcp['retransmits']}, "
            f"fast {tcp['fast_retransmits']})")
        for flow in tcp["flows"]:
            lines.append(
                f"  flow {flow['flow_id']} {flow['state']:<12} "
                f"rx {flow['rx_stream_bytes']:>9} B  "
                f"tx-acked {flow['tx_acked_bytes']:>9} B  "
                f"rtx {flow['retransmits']} "
                f"fast {flow['fast_retransmits']} "
                f"cwnd {flow['cwnd']}")
    if metrics is not None:
        lines.extend(_render_windows(metrics))
    return "\n".join(lines)
