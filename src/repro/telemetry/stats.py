"""Design-wide statistics reporting — the operator's view.

Every tile keeps the counters the control plane can export
(messages/bytes in and out, drops); every router counts forwarded
flits.  ``design_report`` renders the whole design's state as a table,
and ``design_counters`` returns the same data structured, which is
what a monitoring pipeline would scrape.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TileCounters:
    name: str
    kind: str
    coord: tuple
    messages_in: int
    messages_out: int
    bytes_in: int
    bytes_out: int
    drops: int


def design_counters(design) -> dict:
    """Structured counters for every tile and the NoC."""
    tiles = []
    for tile in design.tiles:
        tiles.append(TileCounters(
            name=tile.name,
            kind=getattr(tile, "KIND", "generic"),
            coord=tile.coord,
            messages_in=getattr(tile, "messages_in", 0),
            messages_out=getattr(tile, "messages_out", 0),
            bytes_in=getattr(tile, "bytes_in", 0),
            bytes_out=getattr(tile, "bytes_out", 0),
            drops=getattr(tile, "drops", 0),
        ))
    routers = {
        coord: router.flits_forwarded
        for coord, router in design.mesh.routers.items()
    }
    return {
        "cycle": design.sim.cycle,
        "tiles": tiles,
        "router_flits": routers,
        "total_flits": design.mesh.total_flits_forwarded,
    }


def design_report(design) -> str:
    """A human-readable counter dump for a design."""
    counters = design_counters(design)
    lines = [f"design state at cycle {counters['cycle']}",
             f"{'tile':<14} {'kind':<14} {'coord':<8} "
             f"{'msgs in':>8} {'msgs out':>9} {'bytes in':>10} "
             f"{'bytes out':>10} {'drops':>6}"]
    for tile in counters["tiles"]:
        lines.append(
            f"{tile.name:<14} {tile.kind:<14} "
            f"{str(tile.coord):<8} {tile.messages_in:>8} "
            f"{tile.messages_out:>9} {tile.bytes_in:>10} "
            f"{tile.bytes_out:>10} {tile.drops:>6}"
        )
    lines.append(f"NoC flits forwarded: {counters['total_flits']}")
    busiest = sorted(counters["router_flits"].items(),
                     key=lambda item: -item[1])[:3]
    rendered = ", ".join(f"{coord}: {flits}"
                         for coord, flits in busiest if flits)
    if rendered:
        lines.append(f"busiest routers: {rendered}")
    return "\n".join(lines)
