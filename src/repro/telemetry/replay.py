"""Cycle-accurate trace capture and replay.

TCP on hardware is timing-dependent: "the TCP engine may behave
differently depending on the timing of events (e.g. it may drop
different packets)", so reproduction needs the *exact* cycles, not a
tcpdump-style trace.  The recorder captures (cycle, frame) at a
design's ingress; the replayer drives another design instance with the
same frames at the same relative cycles.  Determinism of the replayed
run is asserted by the tests — the property the paper's debugging
methodology depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    frame: bytes


@dataclass
class FrameTraceRecorder:
    """Wraps a design's ``inject`` to capture a timed frame trace."""

    design: object
    events: list[TraceEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._inner_inject = self.design.inject

    def inject(self, frame: bytes, cycle: int) -> None:
        self.events.append(TraceEvent(cycle=cycle, frame=bytes(frame)))
        self._inner_inject(frame, cycle)

    def attach(self) -> None:
        """Interpose on the design (undo with :meth:`detach`)."""
        self.design.inject = self.inject

    def detach(self) -> None:
        self.design.inject = self._inner_inject


class TraceReplayer:
    """Replays a recorded trace into a design, cycle-accurately.

    A clocked component: add it to the target design's simulator.  The
    trace's first event is aligned to ``start_cycle``; every later
    event keeps its recorded offset.
    """

    def __init__(self, design: object, events: list[TraceEvent],
                 start_cycle: int = 0) -> None:
        self.design = design
        self.events = sorted(events, key=lambda e: e.cycle)
        self.start_cycle = start_cycle
        self._base = self.events[0].cycle if self.events else 0
        self._index = 0
        self.replayed = 0
        # Events due at or before the start are pre-loaded, exactly as
        # a recorded run's initial frames were injected before the
        # clock started.
        while not self.done:
            event = self.events[self._index]
            due = self.start_cycle + (event.cycle - self._base)
            if due > self.start_cycle:
                break
            self.design.inject(event.frame, due)
            self._index += 1
            self.replayed += 1

    @property
    def done(self) -> bool:
        return self._index >= len(self.events)

    def step(self, cycle: int) -> None:
        # Inject one cycle ahead of the due time (stamped with the due
        # cycle): components that already stepped this cycle then see
        # the frame become consumable exactly at its recorded cycle.
        while not self.done:
            event = self.events[self._index]
            due = self.start_cycle + (event.cycle - self._base)
            if due > cycle + 1:
                return
            self.design.inject(event.frame, due)
            self._index += 1
            self.replayed += 1

    def commit(self) -> None:
        pass
