"""Exporters: Prometheus text format and versioned JSON snapshots.

Two consumers, two formats:

- :func:`prometheus_text` renders a :class:`~repro.telemetry.metrics.
  MetricsRegistry` in the Prometheus exposition text format (v0.0.4):
  ``# HELP`` / ``# TYPE`` headers, counters with a ``_total`` suffix,
  histograms as cumulative ``_bucket{le="..."}`` series plus ``_sum``
  and ``_count`` — what a scrape endpoint would serve.
- :class:`SnapshotSeries` is the recorded-telemetry interchange file:
  a schema-versioned JSON document holding the probe's periodic
  snapshots, written by :meth:`~repro.telemetry.probe.Probe.write` and
  replayed deterministically by ``python -m repro.tools.top --replay``.

Both formats are pure functions of their inputs — same registry or
series in, byte-identical text out — which is what makes the replay
determinism test in CI meaningful.
"""

from __future__ import annotations

import json

from repro.telemetry.metrics import Histogram, MetricsRegistry

SNAPSHOT_SCHEMA = "repro.telemetry.snapshots/1"


def _prom_name(name: str) -> str:
    """Metric names use dots as namespacing; Prometheus wants [a-zA-Z0-9_:]."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch in "_:" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _prom_value(value: object) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """The registry in Prometheus exposition text format.

    Every line is ``name{labels} value`` (labels only on histogram
    buckets); instruments render in name order, so the output is a
    deterministic function of the registry's state.
    """
    lines: list[str] = []
    for metric in registry:
        name = _prom_name(f"{prefix}_{metric.name}" if prefix
                          else metric.name)
        help_text = getattr(metric, "help", "") or metric.name
        if metric.kind == "counter":
            lines.append(f"# HELP {name}_total {help_text}")
            lines.append(f"# TYPE {name}_total counter")
            lines.append(f"{name}_total {_prom_value(metric.value)}")
        elif metric.kind == "gauge":
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_value(metric.value)}")
        elif metric.kind == "histogram":
            assert isinstance(metric, Histogram)
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in metric.buckets():
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{bound}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{name}_sum {_prom_value(metric.total)}")
            lines.append(f"{name}_count {metric.count}")
        else:  # pragma: no cover - future instrument kinds
            raise TypeError(f"unknown instrument kind {metric.kind!r}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse exposition text back to ``{series: value}`` (line check).

    A deliberately strict little parser used by the tests and the CI
    line-format gate: every non-comment line must be
    ``name[{labels}] value`` with a float-parseable value and a
    well-formed label block, or ValueError is raised.
    """
    series: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            if line.startswith("#") and not line.startswith(("# HELP",
                                                             "# TYPE")):
                raise ValueError(f"line {lineno}: bad comment {line!r}")
            continue
        try:
            key, value_text = line.rsplit(None, 1)
        except ValueError:
            raise ValueError(f"line {lineno}: not 'name value': {line!r}")
        if "{" in key:
            if not key.endswith("}") or key.count("{") != 1:
                raise ValueError(f"line {lineno}: bad label block {key!r}")
            name, labels = key[:-1].split("{", 1)
            for part in labels.split(","):
                if "=" not in part or part.split("=", 1)[1][:1] != '"':
                    raise ValueError(
                        f"line {lineno}: bad label {part!r}")
        else:
            name = key
        if not name or name[0].isdigit() or \
                not all(c.isalnum() or c in "_:" for c in name):
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        series[key] = float(value_text)
    return series


class SnapshotSeries:
    """A schema-versioned series of probe snapshots.

    The probe appends one JSON-able dict per sampling point; ``write``
    persists the whole series with its schema tag and metadata, and
    ``load`` validates the document before handing it back.  The
    on-disk document is the contract between a recorded run and every
    later consumer (``tools/top --replay``, dashboards, diffing).
    """

    def __init__(self, interval: int, design: str = "",
                 meta: dict | None = None) -> None:
        if interval < 1:
            raise ValueError("snapshot interval must be >= 1 cycle")
        self.interval = interval
        self.design = design
        self.meta = dict(meta or {})
        self.snapshots: list[dict] = []

    def append(self, snapshot: dict) -> None:
        self.snapshots.append(snapshot)

    def __len__(self) -> int:
        return len(self.snapshots)

    def to_dict(self) -> dict:
        return {
            "schema": SNAPSHOT_SCHEMA,
            "interval": self.interval,
            "design": self.design,
            "meta": self.meta,
            "snapshots": self.snapshots,
        }

    def write(self, path: str) -> dict:
        document = self.to_dict()
        with open(path, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        return document

    @classmethod
    def from_dict(cls, document: dict) -> SnapshotSeries:
        validate_snapshot_document(document)
        series = cls(interval=document["interval"],
                     design=document.get("design", ""),
                     meta=document.get("meta", {}))
        series.snapshots = list(document["snapshots"])
        return series

    @classmethod
    def load(cls, path: str) -> SnapshotSeries:
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def validate_snapshot_document(document: dict) -> None:
    """Raise ValueError unless ``document`` is a valid snapshot series."""
    if not isinstance(document, dict):
        raise ValueError("snapshot document must be a JSON object")
    schema = document.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ValueError(f"unknown snapshot schema {schema!r} "
                         f"(expected {SNAPSHOT_SCHEMA!r})")
    interval = document.get("interval")
    if not isinstance(interval, int) or interval < 1:
        raise ValueError(f"bad snapshot interval {interval!r}")
    snapshots = document.get("snapshots")
    if not isinstance(snapshots, list):
        raise ValueError("snapshot document missing 'snapshots' list")
    last_cycle = -1
    for index, snapshot in enumerate(snapshots):
        if not isinstance(snapshot, dict) or "cycle" not in snapshot:
            raise ValueError(f"snapshot {index} missing 'cycle'")
        cycle = snapshot["cycle"]
        if not isinstance(cycle, int) or cycle <= last_cycle:
            raise ValueError(
                f"snapshot {index}: cycles must increase "
                f"({cycle!r} after {last_cycle})")
        last_cycle = cycle
