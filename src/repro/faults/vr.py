"""Fault application for the event-level VR cluster.

The cycle-level machinery in :mod:`repro.faults.engine` targets mesh
designs; the VR evaluation's cluster (:mod:`repro.apps.vr.cluster`)
runs in the *event* simulator in seconds.  This adapter maps a
:class:`~repro.faults.plan.FaultPlan`'s ``vr_freeze`` entries onto
:meth:`repro.apps.vr.cluster.VrExperiment.schedule_freeze`, so the
same declarative plan object drives both simulation layers.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan


def apply_vr_faults(experiment, plan: FaultPlan | None):
    """Schedule a plan's VR node freezes onto ``experiment``.

    Must be called before :meth:`VrExperiment.run` (events are
    scheduled at absolute simulated times).  Returns the experiment.
    """
    experiment.fault_plan = plan
    if plan is None:
        return experiment
    for role, shard, at_s, duration_s in plan.vr_events:
        experiment.schedule_freeze(role, shard, at_s, duration_s)
    return experiment
