"""Live fault machinery: the wire, the schedule engine, attachment.

``attach_faults(design, plan)`` instantiates, from one
:class:`~repro.faults.plan.FaultPlan`:

- a :class:`FaultyWire` interposed on ``design.inject`` for wire
  impairments (drop/corrupt/duplicate/reorder/delay);
- per-port ejection fault state (flit corruption) consulted by
  :meth:`repro.noc.mesh.LocalPort.receive` — the staging shared by the
  object and flat mesh backends, so both observe bit-identical fault
  streams;
- a :class:`FaultEngine`, a clocked component owning the time-sorted
  event schedule (tile freeze/crash windows, link-stall windows), the
  fault counters, and the tracer feed.

Everything is deterministic per plan seed: wire draws happen in frame
injection order from one named stream, ejection draws in per-port flit
order from per-port streams, and scheduled events at fixed cycles —
none of which depend on the kernel or mesh backend in use.
"""

from __future__ import annotations

import heapq
from collections import Counter

from repro.faults.plan import FaultPlan, WireFaultSpec
from repro.sim.kernel import Wakeable
from repro.sim.rng import SeededStreams


def _corrupt_payload(data: bytes, rng, n_bytes: int) -> bytes:
    """XOR ``n_bytes`` randomly chosen bytes with non-zero masks."""
    if not data:
        return data
    out = bytearray(data)
    for _ in range(n_bytes):
        index = rng.randrange(len(out))
        out[index] ^= rng.randrange(1, 256)
    return bytes(out)


class FaultyWire(Wakeable):
    """A lossy, reordering link between frame injection and the MAC.

    Frames offered through :meth:`inject` suffer the plan's wire
    impairments and are released to the underlying ``push`` callable in
    arrival order (a heap keyed by arrival cycle), modelling a physical
    link: a delayed frame is overtaken by later traffic instead of
    head-of-line blocking it.
    """

    def __init__(self, sim, push, spec: WireFaultSpec, rng, engine):
        self.sim = sim
        self._push = push
        self.spec = spec
        self.rng = rng
        self.engine = engine
        self._heap: list[tuple[int, int, bytes]] = []
        self._seq = 0
        self.frames_offered = 0
        self.frames_delivered = 0

    # -- injection side -----------------------------------------------------

    def inject(self, frame: bytes, cycle: int) -> None:
        """The design-facing replacement for ``design.inject``."""
        spec, rng, engine = self.spec, self.rng, self.engine
        self.frames_offered += 1
        arrival = cycle
        if spec.drop and rng.random() < spec.drop:
            engine.record("wire.drop", detail=len(frame))
            return
        if spec.corrupt and rng.random() < spec.corrupt:
            frame = _corrupt_payload(frame, rng, spec.corrupt_bytes)
            engine.record("wire.corrupt")
        duplicate = spec.duplicate and rng.random() < spec.duplicate
        if spec.reorder and rng.random() < spec.reorder:
            arrival += spec.reorder_cycles
            engine.record("wire.reorder")
        if spec.delay and rng.random() < spec.delay:
            arrival += rng.randint(*spec.delay_range)
            engine.record("wire.delay")
        self._schedule(arrival, frame)
        if duplicate:
            engine.record("wire.duplicate")
            self._schedule(arrival + spec.dup_delay_cycles, frame)

    def _schedule(self, arrival: int, frame: bytes) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (arrival, self._seq, frame))
        self._wake()

    # -- clocked behaviour --------------------------------------------------

    def step(self, cycle: int) -> None:
        heap = self._heap
        while heap and heap[0][0] <= cycle:
            _, _, frame = heapq.heappop(heap)
            self.frames_delivered += 1
            self._push(frame, cycle)

    def commit(self) -> None:
        pass

    # -- quiescence contract (see repro.sim.kernel) -------------------------

    def is_idle(self) -> bool:
        return not self._heap

    def next_event_cycle(self) -> int | None:
        return self._heap[0][0] if self._heap else None


class _EjectFault:
    """Per-port ejection impairment state, consulted by
    :meth:`repro.noc.mesh.LocalPort.receive` for every popped flit.

    One probability draw per ejected flit keeps the stream aligned
    across backends: the differential suite guarantees both backends
    eject identical flit sequences per port, so identical draws land
    on identical flits.
    """

    __slots__ = ("engine", "coord", "prob", "rng")

    def __init__(self, engine, coord, prob: float, rng):
        self.engine = engine
        self.coord = coord
        self.prob = prob
        self.rng = rng

    def filter(self, flit):
        from repro.noc.flit import FlitKind
        if self.rng.random() >= self.prob:
            return flit
        if flit.kind is not FlitKind.DATA or not flit.payload:
            # Only payload bytes rot; corrupting routing/metadata would
            # wedge the wormhole rather than model bit errors.
            return flit
        flit.payload = _corrupt_payload(bytes(flit.payload), self.rng, 1)
        self.engine.record("noc.flit_corrupt", target=self.coord,
                           detail=flit.msg_id)
        return flit


class FaultEngine(Wakeable):
    """The clocked owner of a design's fault schedule and counters.

    Registered after the design's own components, it applies due
    events during its ``step`` — so a fault landing "at cycle N"
    becomes visible to tiles from cycle N+1, identically under every
    kernel (timer wheel wakes it at exactly each event cycle).
    """

    #: Freezes/stalls/thaws touch tiles and ports across the whole
    #: mesh, so a sharded run steps the engine at the coordinator,
    #: after every shard's tick and the boundary exchange — the same
    #: "visible from N+1" timing as the unsharded registration slot
    #: (see repro.sim.shard).
    shard_scope = "global"

    def __init__(self, design, plan: FaultPlan):
        self.design = design
        self.plan = plan
        self.sim = design.sim
        self.counters: Counter = Counter()
        #: (cycle, kind, target, detail) for every recorded fault.
        self.log: list[tuple] = []
        self._events: list[tuple[int, int, object]] = []
        self._next = 0

    # -- schedule construction (attach time) --------------------------------

    def schedule(self, cycle: int, action) -> None:
        """Queue ``action(cycle)`` to run during the step at
        ``cycle``.  Insertion order breaks ties, deterministically."""
        self._events.append((cycle, len(self._events), action))

    def seal(self) -> None:
        self._events.sort(key=lambda event: (event[0], event[1]))

    # -- recording ----------------------------------------------------------

    def record(self, kind: str, target=None, detail=None) -> None:
        cycle = self.sim.cycle
        self.counters[kind] += 1
        self.log.append((cycle, kind, target, detail))
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.fault(cycle, kind, target, detail)

    # -- fault actions ------------------------------------------------------

    def _freeze(self, tile, cycle: int) -> None:
        tile._fault_frozen = True
        self.record("tile.freeze", target=tile.name)

    def _crash(self, tile, cycle: int) -> None:
        lost = len(tile._rx_ready)
        if tile._in_service is not None:
            lost += 1
            tile._in_service = None
        if lost:
            tile.drops += lost
            tile.drop_reasons["fault: crash"] += lost
            self.counters["tile.crash_lost_msgs"] += lost
        tile._rx_ready.clear()
        tile._buffered_flits = 0
        tile._fault_frozen = True
        self.record("tile.crash", target=tile.name, detail=lost)

    def _thaw(self, tile, cycle: int) -> None:
        tile._fault_frozen = False
        # Kernel-wake-safe resume: a tile that slept through the whole
        # window re-enters the active set and re-derives its timers.
        # ``_wake`` routes through whatever hook owns the tile — the
        # scheduled kernel's waker, a flat tile core's busy-bit setter,
        # or nothing under the naive kernel (which steps everything).
        tile._wake()
        self.record("tile.thaw", target=tile.name)

    def _stall(self, port, cycle: int) -> None:
        port.fault_stalled = True
        self.record("noc.stall", target=port.coord)

    def _unstall(self, port, cycle: int) -> None:
        port.fault_stalled = False
        self.record("noc.unstall", target=port.coord)

    def _misroute_on(self, router, cycle: int) -> None:
        router.fault_misroute(True)
        self.record("noc.misroute_on", target=router.coord)

    def _misroute_off(self, router, cycle: int) -> None:
        router.fault_misroute(False)
        self.record("noc.misroute_off", target=router.coord)

    def _grant_stick(self, router, out_index: int, cycle: int) -> None:
        router.fault_block_output(out_index, True)
        self.record("noc.stuck_grant", target=router.coord,
                    detail=out_index)

    def _grant_release(self, router, out_index: int,
                       cycle: int) -> None:
        router.fault_block_output(out_index, False)
        self.record("noc.grant_release", target=router.coord,
                    detail=out_index)

    # -- clocked behaviour --------------------------------------------------

    def step(self, cycle: int) -> None:
        events = self._events
        while self._next < len(events) and events[self._next][0] <= cycle:
            _, _, action = events[self._next]
            self._next += 1
            action(cycle)

    def commit(self) -> None:
        pass

    # -- quiescence contract (see repro.sim.kernel) -------------------------

    def is_idle(self) -> bool:
        return (self._next >= len(self._events)
                or self._events[self._next][0] > self.sim.cycle)

    def next_event_cycle(self) -> int | None:
        if self._next >= len(self._events):
            return None
        return self._events[self._next][0]


def _iter_tiles(design):
    tiles = design.tiles
    if isinstance(tiles, dict):
        return list(tiles.values())
    return list(tiles)


def attach_faults(design, plan: FaultPlan | None):
    """Wire a :class:`FaultPlan` into an instantiated design.

    Returns the design's :class:`FaultEngine`, or ``None`` for a null
    plan (the fast path: nothing is installed, the design runs the
    exact pre-fault code paths).  Design constructors call this for
    their ``fault_plan=`` kwarg; it equally works post-construction on
    any design exposing ``sim``/``mesh``/``tiles``/``inject``.
    """
    design.fault_plan = plan
    if plan is None or plan.is_null:
        if getattr(design, "fault_engine", None) is None:
            design.fault_engine = None
        return None
    if getattr(design, "fault_engine", None) is not None:
        raise ValueError("design already has a fault plan attached")

    streams = SeededStreams(plan.seed)
    engine = FaultEngine(design, plan)

    tiles = {tile.name: tile for tile in _iter_tiles(design)}
    for kind, name, at, duration in plan.tile_events:
        tile = tiles.get(name)
        if tile is None:
            raise KeyError(
                f"fault plan targets unknown tile {name!r} "
                f"(design has {sorted(tiles)})")
        apply = engine._crash if kind == "crash" else engine._freeze
        engine.schedule(at, lambda c, t=tile, a=apply: a(t, c))
        engine.schedule(at + duration,
                        lambda c, t=tile: engine._thaw(t, c))

    ports = design.mesh.ports
    for coord, at, duration in plan.stall_windows:
        port = ports.get(coord)
        if port is None:
            raise KeyError(
                f"fault plan stalls unattached port {coord!r} "
                f"(attached: {sorted(ports)})")
        engine.schedule(at, lambda c, p=port: engine._stall(p, c))
        engine.schedule(at + duration,
                        lambda c, p=port: engine._unstall(p, c))

    routers = design.mesh.routers
    for kind, coord, port_index, at, duration in plan.router_events:
        router = routers.get(tuple(coord))
        if router is None:
            raise KeyError(
                f"fault plan targets unknown router {coord!r} "
                f"(mesh has {sorted(routers)})")
        if kind == "misroute":
            engine.schedule(at, lambda c, r=router:
                            engine._misroute_on(r, c))
            engine.schedule(at + duration, lambda c, r=router:
                            engine._misroute_off(r, c))
        else:
            engine.schedule(at, lambda c, r=router, o=port_index:
                            engine._grant_stick(r, o, c))
            engine.schedule(at + duration,
                            lambda c, r=router, o=port_index:
                            engine._grant_release(r, o, c))

    for coords, prob in plan.eject_corrupt:
        if not prob:
            continue
        targets = sorted(ports) if coords is None else coords
        for coord in targets:
            port = ports.get(tuple(coord))
            if port is None:
                raise KeyError(
                    f"fault plan corrupts unattached port {coord!r}")
            port._fault_eject = _EjectFault(
                engine, tuple(coord), prob,
                streams.stream(f"eject{tuple(coord)}"))

    if plan.wire_spec is not None and plan.wire_spec.active:
        wire = FaultyWire(design.sim, design.inject, plan.wire_spec,
                          streams.stream("wire"), engine)
        design.fault_wire = wire
        design.sim.add(wire)
        # Shadow the bound method: all existing callers (tests, peers,
        # FrameSource) now route through the lossy wire.
        design.inject = wire.inject

    engine.seal()
    design.sim.add(engine)
    design.fault_engine = engine
    return engine
