"""Declarative, seed-deterministic fault schedules.

A :class:`FaultPlan` describes *what goes wrong and when* — wire
impairments at the MAC boundary, NoC link stalls and ejection-flit
corruption, tile freezes and crashes, and (for the event-level VR
cluster) node freezes — without referencing any concrete design
object.  The same plan can therefore be attached to several
independently constructed designs (the kernel x mesh-backend
differential suite relies on this), and every random draw it implies
comes from :class:`repro.sim.rng.SeededStreams` derived from the
plan's single ``seed``, so a plan replays bit-identically.

Plans are builders: every mutator returns ``self`` so schedules read
as one chained expression::

    plan = (FaultPlan(seed=7)
            .wire(drop=0.01, duplicate=0.005)
            .freeze_tile("app", at=2_000, duration=1_500)
            .stall_link((3, 0), at=5_000, duration=400)
            .corrupt_flits(0.001, coords=[(2, 0)]))

Attachment to a design happens through
:func:`repro.faults.attach_faults` (or the ``fault_plan=`` kwarg every
shipped design constructor threads through to it).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Output-port name -> hot-path index (repro.noc.router's encoding).
_ROUTER_PORTS = {"local": 0, "east": 1, "west": 2, "north": 3,
                 "south": 4}


def _check_prob(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], "
                         f"got {value!r}")
    return value


def _check_window(at: int, duration: int) -> tuple[int, int]:
    if at < 0:
        raise ValueError(f"fault start cycle must be >= 0, got {at}")
    if duration < 1:
        raise ValueError(f"fault duration must be >= 1 cycle, "
                         f"got {duration}")
    return int(at), int(duration)


@dataclass(frozen=True)
class WireFaultSpec:
    """Per-frame impairment probabilities at the MAC ingress.

    For each injected frame the draws happen in a fixed order — drop,
    corrupt, duplicate, reorder, delay — from one named stream, so the
    impairment sequence depends only on the plan seed and the order
    frames are offered to the wire (which the simulator keeps
    deterministic).
    """

    drop: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    corrupt_bytes: int = 1        # bytes XORed per corrupted frame
    dup_delay_cycles: int = 1     # copy arrives this long after the original
    reorder_cycles: int = 64      # a reordered frame is held back this long
    delay_range: tuple[int, int] = (1, 64)  # uniform extra latency

    @property
    def active(self) -> bool:
        return any((self.drop, self.corrupt, self.duplicate,
                    self.reorder, self.delay))


class FaultPlan:
    """A seed plus a schedule of injected faults.

    The plan itself is inert data; :func:`repro.faults.attach_faults`
    turns it into live machinery on one design.  Attaching never
    mutates the plan, so one plan may drive many designs.
    """

    def __init__(self, seed: int = 0xFA17):
        self.seed = seed
        self.wire_spec: WireFaultSpec | None = None
        #: (kind, tile name, start cycle, duration) with kind in
        #: {"freeze", "crash"}.
        self.tile_events: list[tuple[str, str, int, int]] = []
        #: (coord, start cycle, duration) ejection-stall windows.
        self.stall_windows: list[tuple[tuple[int, int], int, int]] = []
        #: (coords-or-None, probability) ejection flit corruption;
        #: ``None`` targets every attached port.
        self.eject_corrupt: list[tuple[list | None, float]] = []
        #: (role, shard, at_s, duration_s) for the event-level VR
        #: cluster (seconds, not cycles).
        self.vr_events: list[tuple[str, int, float, float]] = []
        #: (kind, coord, port index or None, start cycle, duration)
        #: router-internal fault windows, kind in {"misroute",
        #: "stuck_grant"}.
        self.router_events: list[
            tuple[str, tuple[int, int], int | None, int, int]] = []

    # -- wire impairments ---------------------------------------------------

    def wire(self, drop: float = 0.0, corrupt: float = 0.0,
             duplicate: float = 0.0, reorder: float = 0.0,
             delay: float = 0.0, corrupt_bytes: int = 1,
             dup_delay_cycles: int = 1, reorder_cycles: int = 64,
             delay_range: tuple[int, int] = (1, 64)) -> "FaultPlan":
        """Impair frames at the ``FrameSource``/``eth`` boundary."""
        if corrupt_bytes < 1:
            raise ValueError("corrupt_bytes must be >= 1")
        if dup_delay_cycles < 1:
            raise ValueError("dup_delay_cycles must be >= 1")
        if reorder_cycles < 1:
            raise ValueError("reorder_cycles must be >= 1")
        lo, hi = delay_range
        if not 0 < lo <= hi:
            raise ValueError(f"bad delay_range {delay_range!r}")
        self.wire_spec = WireFaultSpec(
            drop=_check_prob("drop", drop),
            corrupt=_check_prob("corrupt", corrupt),
            duplicate=_check_prob("duplicate", duplicate),
            reorder=_check_prob("reorder", reorder),
            delay=_check_prob("delay", delay),
            corrupt_bytes=int(corrupt_bytes),
            dup_delay_cycles=int(dup_delay_cycles),
            reorder_cycles=int(reorder_cycles),
            delay_range=(int(lo), int(hi)),
        )
        return self

    # -- tile faults --------------------------------------------------------

    def freeze_tile(self, name: str, at: int,
                    duration: int) -> "FaultPlan":
        """Stop a tile's clock for ``duration`` cycles starting the
        cycle after ``at``.  The tile's router and local port keep
        running (queued injections drain, ejections back-pressure), and
        the resume is kernel-wake-safe: a frozen tile is pinned in the
        scheduler's active set and explicitly re-woken at thaw."""
        at, duration = _check_window(at, duration)
        self.tile_events.append(("freeze", name, at, duration))
        return self

    def crash_tile(self, name: str, at: int,
                   duration: int) -> "FaultPlan":
        """Like :meth:`freeze_tile`, but the tile also loses its soft
        state at the crash point: buffered/ in-service messages are
        dropped (counted under the ``fault: crash`` drop reason).
        Flits already in the NoC still deliver after the reboot."""
        at, duration = _check_window(at, duration)
        self.tile_events.append(("crash", name, at, duration))
        return self

    # -- NoC faults ---------------------------------------------------------

    def stall_link(self, coord: tuple[int, int], at: int,
                   duration: int) -> "FaultPlan":
        """Stall the ejection link of the local port at ``coord`` for
        ``duration`` cycles starting the cycle after ``at``.  The
        port's ejection FIFO fills and back-pressures the mesh — the
        same staging both backends share, so the stall is observed
        bit-identically by the object and flat cores."""
        at, duration = _check_window(at, duration)
        self.stall_windows.append((tuple(coord), at, duration))
        return self

    def corrupt_flits(self, prob: float,
                      coords: list | None = None) -> "FaultPlan":
        """Corrupt one payload byte of ejected DATA flits with
        probability ``prob`` per flit, at ``coords`` (or every
        attached port when ``None``).  Header and metadata flits are
        never touched — a corrupted header would misroute the wormhole
        rather than model payload bit-rot."""
        prob = _check_prob("corrupt_flits prob", prob)
        if coords is not None:
            coords = [tuple(c) for c in coords]
        self.eject_corrupt.append((coords, prob))
        return self

    def misroute(self, coord: tuple[int, int], at: int,
                 duration: int) -> "FaultPlan":
        """Misroute-one-hop window at the router at ``coord``: for
        ``duration`` cycles starting the cycle after ``at``, every
        routing decision the router makes deflects to the next
        connected directional port (ejection is never deflected).
        Deflected flits take a legal wrong turn and re-route at the
        next hop, so traffic detours — and may transiently contend —
        but still delivers once the window closes.  Deterministic and
        bit-identical across the object and flat mesh backends."""
        at, duration = _check_window(at, duration)
        self.router_events.append(
            ("misroute", tuple(coord), None, at, duration))
        return self

    def stuck_grant(self, coord: tuple[int, int], port, at: int,
                    duration: int) -> "FaultPlan":
        """Stuck-output-grant window: the router at ``coord`` stops
        advancing its ``port`` output ("east"/"west"/"north"/"south"/
        "local", or a :class:`repro.noc.routing.Port`) for ``duration``
        cycles starting the cycle after ``at`` — as if the grant
        arbiter wedged and downstream credits never returned.  The
        owning wormhole holds its chain of links (the Fig. 5 stall
        shape) until the window closes."""
        at, duration = _check_window(at, duration)
        port_name = str(getattr(port, "value", port)).lower()
        if port_name not in _ROUTER_PORTS:
            raise ValueError(
                f"unknown router port {port!r} "
                f"(choose from {sorted(_ROUTER_PORTS)})")
        self.router_events.append(
            ("stuck_grant", tuple(coord), _ROUTER_PORTS[port_name],
             at, duration))
        return self

    # -- event-level VR faults ----------------------------------------------

    def vr_freeze(self, role: str, shard: int, at_s: float,
                  duration_s: float) -> "FaultPlan":
        """Freeze a VR node's server core (event-level cluster): the
        ``role`` ("leader", "witness", "replica") of ``shard`` stops
        serving for ``duration_s`` seconds starting at ``at_s``."""
        if role not in ("leader", "witness", "replica"):
            raise ValueError(f"unknown VR role {role!r}")
        if at_s < 0 or duration_s <= 0:
            raise ValueError("vr_freeze needs at_s >= 0 and "
                             "duration_s > 0")
        self.vr_events.append((role, int(shard), float(at_s),
                               float(duration_s)))
        return self

    # -- introspection ------------------------------------------------------

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing — the fast path:
        attaching a null plan installs no machinery at all."""
        return (
            (self.wire_spec is None or not self.wire_spec.active)
            and not self.tile_events
            and not self.stall_windows
            and not any(prob for _, prob in self.eject_corrupt)
            and not self.vr_events
            and not self.router_events
        )

    def describe(self) -> str:
        """One line per scheduled fault, for logs and CLI output."""
        lines = [f"FaultPlan(seed={self.seed:#x})"]
        if self.wire_spec is not None and self.wire_spec.active:
            s = self.wire_spec
            lines.append(
                f"  wire: drop={s.drop} corrupt={s.corrupt} "
                f"duplicate={s.duplicate} reorder={s.reorder} "
                f"delay={s.delay}"
            )
        for kind, name, at, duration in self.tile_events:
            lines.append(f"  {kind} tile {name!r}: "
                         f"cycles ({at}, {at + duration}]")
        for coord, at, duration in self.stall_windows:
            lines.append(f"  stall link {coord}: "
                         f"cycles ({at}, {at + duration}]")
        for coords, prob in self.eject_corrupt:
            where = "all ports" if coords is None else str(coords)
            lines.append(f"  corrupt ejected flits p={prob} at {where}")
        for kind, coord, port_index, at, duration in self.router_events:
            where = f"router {coord}"
            if port_index is not None:
                names = {v: k for k, v in _ROUTER_PORTS.items()}
                where += f".{names[port_index]}"
            lines.append(f"  {kind} {where}: "
                         f"cycles ({at}, {at + duration}]")
        for role, shard, at_s, duration_s in self.vr_events:
            lines.append(f"  vr freeze {role}[{shard}]: "
                         f"[{at_s}s, {at_s + duration_s}s)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return self.describe().replace("\n", " | ")
