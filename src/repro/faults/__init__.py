"""``repro.faults`` — deterministic fault injection and chaos testing.

The reproduction's reliability claims (hostile traffic is dropped,
never crashed on; TCP retransmits to completion; the VR cluster
survives node failure) are exercised through one declarative layer:

- :class:`FaultPlan` — a seed plus a schedule of wire impairments,
  NoC link stalls / flit corruption, tile freezes/crashes, and VR
  node freezes (:mod:`repro.faults.plan`);
- :func:`attach_faults` — instantiates the plan on a cycle-level
  design (:mod:`repro.faults.engine`); every shipped design
  constructor accepts ``fault_plan=`` and calls it;
- :func:`apply_vr_faults` — the adapter for the event-level VR
  cluster (:mod:`repro.faults.vr`);
- ``python -m repro.tools.chaos`` — seed-sweeping CLI asserting
  recovery invariants over the shipped designs.

Determinism: all randomness derives from the plan seed via
:class:`repro.sim.rng.SeededStreams`, and every injection point sits
on state shared by both mesh backends, so an active plan keeps the
kernel x backend differential suite green.
"""

from repro.faults.engine import (
    FaultEngine,
    FaultyWire,
    attach_faults,
)
from repro.faults.plan import FaultPlan, WireFaultSpec
from repro.faults.vr import apply_vr_faults

__all__ = [
    "FaultEngine",
    "FaultPlan",
    "FaultyWire",
    "WireFaultSpec",
    "apply_vr_faults",
    "attach_faults",
]
