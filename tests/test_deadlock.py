"""Tests for the static deadlock analysis and its runtime counterpart."""

import pytest

from repro.analysis.deadlock import (
    DeadlockError,
    analyze_chains,
    assert_deadlock_free,
    chain_link_sequence,
)
from repro.deadlock import build_fig5_layout
from repro.noc import NocMessage, Port


class TestChainLinkSequence:
    def test_straight_line(self):
        coords = {"a": (0, 0), "b": (1, 0), "c": (2, 0)}
        seq = chain_link_sequence(["a", "b", "c"], coords)
        assert seq == [
            ((0, 0), Port.EAST), ((1, 0), Port.LOCAL),
            ((1, 0), Port.EAST), ((2, 0), Port.LOCAL),
        ]

    def test_unknown_tile_rejected(self):
        with pytest.raises(KeyError):
            chain_link_sequence(["a", "zz"], {"a": (0, 0)})

    def test_self_hop_rejected(self):
        with pytest.raises(ValueError):
            chain_link_sequence(["a", "a"], {"a": (0, 0)})


class TestStaticAnalysis:
    def test_fig5a_detected(self):
        """The paper's Fig 5a placement deadlocks: UDP must route east
        through a link its own packet still holds."""
        coords = {"eth": (0, 0), "ip": (2, 0), "udp": (1, 0),
                  "app": (3, 0)}
        cycle = analyze_chains([["eth", "ip", "udp", "app"]], coords)
        assert cycle is not None
        assert ((1, 0), Port.EAST) in cycle

    def test_fig5b_clean(self):
        coords = {"eth": (0, 0), "ip": (1, 0), "udp": (2, 0),
                  "app": (3, 0)}
        assert analyze_chains([["eth", "ip", "udp", "app"]],
                              coords) is None

    def test_assert_raises_with_witness(self):
        coords = {"eth": (0, 0), "ip": (2, 0), "udp": (1, 0),
                  "app": (3, 0)}
        with pytest.raises(DeadlockError) as excinfo:
            assert_deadlock_free([["eth", "ip", "udp", "app"]], coords)
        assert "eth->ip->udp->app" in str(excinfo.value)
        assert excinfo.value.cycle

    def test_cross_chain_cycle(self):
        """Two individually-safe chains can deadlock each other."""
        # Chain 1 goes east along row 0 then south; chain 2 goes the
        # reverse direction; each holds what the other wants.
        coords = {"a": (0, 0), "b": (2, 0),
                  "c": (2, 1), "d": (0, 1)}
        chains = [["a", "b", "c", "d"],  # east then south then west
                  ["c", "b"]]            # needs the south link backwards
        # a->b: (0,0)E (1,0)E; b->c: (2,0)S; c->d: (2,1)W (1,1)W
        # c->b: (2,1)N -- no overlap; make an actually cyclic pair:
        chains = [["a", "b", "c"], ["c", "d", "a"]]
        result = analyze_chains(chains, coords)
        # This pair is safe (disjoint links); sanity-check that.
        assert result is None
        # Now force a shared-link cycle via a chain that doubles back.
        coords2 = {"w": (0, 0), "x": (3, 0), "y": (1, 0), "z": (2, 0)}
        bad = analyze_chains([["w", "x", "y", "z"]], coords2)
        assert bad is not None

    def test_multiple_chains_union(self):
        """The analyzer unions resources across all declared chains."""
        coords = {"rx": (0, 0), "p": (1, 0), "tx": (2, 0)}
        chains = [["rx", "p"], ["p", "tx"]]
        assert analyze_chains(chains, coords) is None

    def test_designs_ship_deadlock_free(self):
        from repro.designs import (
            IpInIpEchoDesign,
            NatEchoDesign,
            UdpEchoDesign,
        )
        from repro.designs.tcp_stack import TcpServerDesign

        for design_cls in (UdpEchoDesign, NatEchoDesign,
                           IpInIpEchoDesign, TcpServerDesign):
            design = design_cls()  # constructor runs the analyzer
            assert analyze_chains(design.chains,
                                  design.tile_coords) is None


class TestRuntimeDeadlock:
    def _run(self, variant, payload_bytes=8192, max_cycles=5000):
        sim, ingress, tiles, chain, coords = build_fig5_layout(variant)
        ingress.send(NocMessage(dst=coords["ip"], src=coords["eth"],
                                data=bytes(payload_bytes)))
        sim.run_until(lambda: tiles["app"].messages_through >= 1,
                      max_cycles=max_cycles)
        return sim, tiles

    def test_fig5a_wedges_the_noc(self):
        """The statically-detected layout really deadlocks at runtime."""
        with pytest.raises(TimeoutError):
            self._run("a")

    def test_fig5b_streams_cleanly(self):
        sim, tiles = self._run("b")
        # Cut-through streaming: total latency ~ message length + hops.
        assert sim.cycle < 8192 // 64 + 60

    def test_fig5a_ok_for_short_packets(self):
        """Short packets fit in the NoC buffering, so the bad layout
        *appears* to work — exactly why static analysis is needed."""
        sim, tiles = self._run("a", payload_bytes=128)
        assert tiles["app"].messages_through == 1

    def test_static_and_runtime_agree(self):
        for variant, expect_deadlock in (("a", True), ("b", False)):
            _, _, _, chain, coords = build_fig5_layout(variant)
            static = analyze_chains([chain], coords) is not None
            assert static == expect_deadlock
