"""Tests for the cycle-level tracing subsystem.

Covers: the null tracer being the free default, per-packet span
reconstruction (including agreement with the section VII-C latency
microbenchmark's direct measurement), windowed metrics, drop-reason
surfacing, and the Perfetto/Chrome trace-event export.
"""

import json
import tracemalloc

from repro.designs import FrameSink, FrameSource, UdpEchoDesign
from repro.noc.mesh import Mesh
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame
from repro.sim.kernel import CycleSimulator
from repro.telemetry import design_counters, design_report
from repro.telemetry.trace import (
    NULL_TRACER,
    MetricsWindow,
    attach_tracer,
    chrome_trace_events,
    percentile,
    write_chrome_trace,
)
from repro.tiles.base import Tile

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def make_design():
    design = UdpEchoDesign(udp_port=7, line_rate_bytes_per_cycle=None)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    return design


def echo_frame(design, payload, port=7):
    return build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                CLIENT_IP, design.server_ip, 5555, port,
                                payload)


class TestNullTracer:
    def test_null_tracer_is_the_default_everywhere(self):
        design = make_design()
        assert design.sim.tracer is NULL_TRACER
        for router in design.mesh.routers.values():
            assert router.tracer is NULL_TRACER
        for port in design.mesh.ports.values():
            assert port.tracer is NULL_TRACER
        for tile in design.tiles:
            assert tile.tracer is NULL_TRACER
        assert NULL_TRACER.enabled is False

    def test_null_hooks_allocate_nothing(self):
        """The hot-path hooks are no-ops: calling them repeatedly must
        not allocate (beyond tracemalloc's own bookkeeping of this
        frame)."""
        tile = object()
        tracemalloc.start()
        try:
            NULL_TRACER.flit_forwarded(0, (0, 0), "east", None)  # warm up
            before = tracemalloc.take_snapshot()
            for cycle in range(2000):
                NULL_TRACER.cycle_start(cycle)
                NULL_TRACER.flit_forwarded(cycle, (0, 0), "east", None)
                NULL_TRACER.link_stall(cycle, (0, 0), "east", "stall")
                NULL_TRACER.message_received(cycle, tile, None)
                NULL_TRACER.processing_start(cycle, tile, None)
                NULL_TRACER.processing_end(cycle, tile, None, 0)
                NULL_TRACER.buffer_level(cycle, tile, 0)
                NULL_TRACER.drop(cycle, tile, None, "x")
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        import repro.telemetry.trace as trace_module
        grew = [
            stat for stat in after.compare_to(before, "filename")
            if stat.traceback[0].filename == trace_module.__file__
            and stat.size_diff > 0
        ]
        assert grew == []

    def test_null_tracer_stores_no_state(self):
        assert NULL_TRACER.__slots__ == ()
        assert not hasattr(NULL_TRACER, "__dict__")

    def test_tracing_does_not_perturb_timing(self):
        """A traced run is cycle-identical to an untraced one."""
        outputs = []
        for traced in (False, True):
            design = make_design()
            if traced:
                attach_tracer(design)
            sink = FrameSink(design.eth_tx)
            design.sim.add(sink)
            for index, offset in enumerate((0, 7, 40, 120)):
                design.inject(echo_frame(design, bytes([index]) * 16),
                              offset)
            design.sim.run_until(lambda: sink.count >= 4,
                                 max_cycles=5000)
            outputs.append(sink.frames)
        assert outputs[0] == outputs[1]


class _EchoBackTile(Tile):
    """Bounces every message straight back to its sender."""

    def handle_message(self, message, cycle):
        return [self.make_message(message.src, data=message.data)]


class _SinkTile(Tile):
    """Consumes every message (terminal)."""

    def handle_message(self, message, cycle):
        return []


class _SourceTile(_SinkTile):
    """Sends one message per entry in ``schedule`` to ``target``."""

    def __init__(self, *args, target, schedule, **kwargs):
        super().__init__(*args, **kwargs)
        self.target = target
        self.schedule = set(schedule)

    def on_cycle(self, cycle):
        if cycle in self.schedule:
            self.send(self.make_message(self.target, data=b"ping"))


class TestPacketSpans:
    def build_two_tile_echo(self, schedule=(0,)):
        sim = CycleSimulator()
        mesh = Mesh(2, 1)
        echo = _EchoBackTile("echo", mesh, (1, 0))
        source = _SourceTile("source", mesh, (0, 0), target=(1, 0),
                             schedule=schedule)
        mesh.register(sim)
        sim.add_all([source, echo])

        class Design:
            pass

        design = Design()
        design.sim, design.mesh, design.tiles = sim, mesh, [source, echo]
        return design, source, echo

    def test_packet_id_spans_both_tiles(self):
        design, source, echo = self.build_two_tile_echo()
        tracer = attach_tracer(design)
        design.sim.run(300)
        spans_by_packet = tracer.packet_spans()
        assert len(spans_by_packet) == 1
        (spans,) = spans_by_packet.values()
        assert [span.tile for span in spans] == ["echo", "source"]
        # The reply processed at the source inherited the ping's id.
        assert len({span.packet_id for span in spans}) == 1

    def test_latencies_match_span_arithmetic(self):
        design, source, echo = self.build_two_tile_echo(
            schedule=(0, 50, 100))
        tracer = attach_tracer(design)
        design.sim.run(400)
        latencies = tracer.packet_latencies()
        spans_by_packet = tracer.packet_spans()
        assert len(latencies) == 3
        for packet_id, latency in latencies.items():
            spans = spans_by_packet[packet_id]
            assert latency == spans[-1].end - spans[0].end
            assert latency > 0

    def test_latency_agrees_with_direct_measurement(self):
        """Acceptance criterion: tracer-reconstructed per-packet latency
        matches ``eth_tx.last_transit_cycles`` (the section VII-C
        measurement) within 1 cycle."""
        for payload in (b"x", b"y" * 64, b"z" * 256):
            design = make_design()
            tracer = attach_tracer(design)
            sink = FrameSink(design.eth_tx)
            design.sim.add(sink)
            design.inject(echo_frame(design, payload), 0)
            design.sim.run_until(lambda: sink.count >= 1,
                                 max_cycles=2000)
            latencies = tracer.packet_latencies()
            assert len(latencies) == 1
            (latency,) = latencies.values()
            assert abs(latency - design.eth_tx.last_transit_cycles) <= 1

    def test_inflight_packets_excluded_by_default(self):
        design = make_design()
        tracer = attach_tracer(design)
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        design.inject(echo_frame(design, b"done"), 0)
        design.inject(echo_frame(design, b"in flight"), 60)
        design.sim.run_until(lambda: sink.count >= 1, max_cycles=2000)
        # The second packet has crossed several tiles but not egressed.
        assert len(tracer.packet_latencies()) == 1
        assert len(tracer.packet_latencies(complete_only=False)) == 2


class TestDropTracing:
    def run_with_bad_port(self):
        design = make_design()
        tracer = attach_tracer(design)
        design.inject(echo_frame(design, b"nope", port=9999), 0)
        design.sim.run(400)
        return design, tracer

    def test_drop_reason_recorded(self):
        design, tracer = self.run_with_bad_port()
        assert len(tracer.drops) == 1
        drop = tracer.drops[0]
        assert drop.tile == "udp_rx"
        assert "9999" in drop.reason
        assert drop.cycle is not None
        assert drop.packet_id is not None

    def test_drop_reasons_in_counters_and_report(self):
        design, tracer = self.run_with_bad_port()
        counters = design_counters(design)
        by_name = {tile.name: tile for tile in counters["tiles"]}
        assert by_name["udp_rx"].drops == 1
        assert by_name["udp_rx"].drop_reasons == {
            "no app on port 9999": 1}
        report = design_report(design)
        assert "drop reasons:" in report
        assert "no app on port 9999" in report


class TestMetricsWindow:
    def traced_run(self, cycles=2000, window=500):
        design = make_design()
        tracer = attach_tracer(design)
        frame = echo_frame(design, bytes(64))
        source = FrameSource(design.inject, lambda i: frame, rate=50.0)
        sink = FrameSink(design.eth_tx, keep_frames=False)
        design.sim.add(source)
        design.sim.add(sink)
        design.sim.run(cycles)
        return design, tracer, MetricsWindow(tracer, window), sink

    def test_window_count_covers_run(self):
        design, tracer, metrics, sink = self.traced_run(2000, 500)
        samples = metrics.samples()
        assert len(samples) >= 4
        assert samples[0].start == 0
        for prev, cur in zip(samples, samples[1:]):
            assert cur.start == prev.start + 500

    def test_utilization_bounded_and_nonzero(self):
        design, tracer, metrics, sink = self.traced_run()
        busy_windows = 0
        for sample in metrics.samples():
            for util in sample.link_util.values():
                assert 0.0 <= util <= 1.0
            if sample.link_util:
                busy_windows += 1
            for busy in sample.tile_busy.values():
                assert 0.0 <= busy <= 1.0
        assert busy_windows >= 3

    def test_latency_counts_match_egress(self):
        design, tracer, metrics, sink = self.traced_run()
        total = sum(len(sample.latencies)
                    for sample in metrics.samples())
        assert total == sink.count == len(tracer.packet_latencies())

    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100
        assert percentile([], 50) is None
        assert percentile([7], 99) == 7

    def test_windowed_drops(self):
        design = make_design()
        tracer = attach_tracer(design)
        design.inject(echo_frame(design, b"x", port=9999), 0)
        design.inject(echo_frame(design, b"y", port=9999), 600)
        design.sim.run(1200)
        metrics = MetricsWindow(tracer, 500)
        per_window = [sum(sample.drops.values())
                      for sample in metrics.samples()]
        assert sum(per_window) == 2
        assert per_window[0] == 1  # one drop in each of two windows
        assert sum(1 for count in per_window if count) == 2


class TestPerfettoExport:
    def traced_run_with_drops(self):
        design = make_design()
        tracer = attach_tracer(design)
        frame = echo_frame(design, bytes(64))
        source = FrameSource(design.inject, lambda i: frame, rate=50.0)
        design.sim.add(source)
        design.sim.add(FrameSink(design.eth_tx, keep_frames=False))
        design.inject(echo_frame(design, b"bad", port=9999), 10)
        design.sim.run(1500)
        return tracer

    def test_event_schema_and_monotonic_ts(self, tmp_path):
        tracer = self.traced_run_with_drops()
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path), window_cycles=500)
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events
        timestamps = []
        for event in events:
            for key in ("name", "ph", "ts", "pid", "tid"):
                assert key in event, f"missing {key}: {event}"
            if event["ph"] == "X":
                assert "dur" in event and event["dur"] >= 1
            if event["ph"] == "i":
                assert event["s"] in ("t", "p", "g")
            timestamps.append(event["ts"])
        assert timestamps == sorted(timestamps)

    def test_three_track_types_present(self):
        tracer = self.traced_run_with_drops()
        events = chrome_trace_events(tracer, window_cycles=500)
        phases = {event["ph"] for event in events}
        # tile spans, counters (link util / buffers), drop instants
        assert {"X", "C", "i"} <= phases
        names = {event["name"] for event in events}
        assert any(name.startswith("link") for name in names)
        assert any(name.startswith("drop:") for name in names)
        assert any(name.startswith("pkt ") for name in names)


class TestTraceCli:
    def test_cli_writes_valid_trace_and_summary(self, tmp_path, capsys):
        from repro.tools.trace import main

        out = tmp_path / "echo.json"
        code = main(["udp_echo", "--cycles", "1200", "--window", "400",
                     "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "per-window metrics" in printed
        assert "packet latency" in printed
        document = json.loads(out.read_text())
        assert len(document["traceEvents"]) > 10

    def test_cli_rejects_missing_file(self, tmp_path, capsys):
        from repro.tools.trace import main

        code = main([str(tmp_path / "nope.xml")])
        assert code == 1
