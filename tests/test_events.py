"""Tests for the event-driven simulator and the RNG streams."""

import pytest

from repro.sim.events import EventSimulator
from repro.sim.rng import SeededStreams


class TestEventSimulator:
    def test_events_fire_in_time_order(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        sim = EventSimulator()
        fired = []
        for tag in range(5):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == list(range(5))

    def test_now_advances(self):
        sim = EventSimulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]

    def test_nested_scheduling(self):
        sim = EventSimulator()
        fired = []

        def first():
            fired.append(("first", sim.now))
            sim.schedule(1.0, second)

        def second():
            fired.append(("second", sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [("first", 1.0), ("second", 2.0)]

    def test_cancel(self):
        sim = EventSimulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_run_until_stops_and_pins_now(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run_until(2.0)
        assert fired == ["a"]
        assert sim.now == 2.0
        sim.run_until(10.0)
        assert fired == ["a", "b"]

    def test_negative_delay_rejected(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at(self):
        sim = EventSimulator()
        fired = []
        sim.schedule_at(4.0, fired.append, "x")
        sim.run()
        assert sim.now == 4.0 and fired == ["x"]

    def test_runaway_guard(self):
        sim = EventSimulator()

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(TimeoutError):
            sim.run(max_events=100)


class TestSeededStreams:
    def test_same_name_same_sequence(self):
        a = SeededStreams(1).stream("x")
        b = SeededStreams(1).stream("x")
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        streams = SeededStreams(1)
        xs = [streams.stream("x").random() for _ in range(5)]
        ys = [streams.stream("y").random() for _ in range(5)]
        assert xs != ys

    def test_different_seeds_differ(self):
        a = SeededStreams(1).stream("x").random()
        b = SeededStreams(2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        streams = SeededStreams()
        assert streams.stream("x") is streams.stream("x")
