"""Tests for the Reed-Solomon substrate: field, matrices, codec, tile."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.reed_solomon.codec import ReedSolomonCodec
from repro.apps.reed_solomon.cpu import CpuReedSolomonBaseline
from repro.apps.reed_solomon.gf import GF
from repro.apps.reed_solomon.matrix import GFMatrix
from repro.designs import FrameSink, FrameSource
from repro.designs.rs_design import RsDesign
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)
from repro import params

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


class TestGF256:
    def test_identity_elements(self):
        assert GF.mul(1, 77) == 77
        assert GF.add(0, 77) == 77
        assert GF.mul(0, 77) == 0

    def test_known_product(self):
        # In GF(2^8) with poly 0x11D: 2 * 128 = 0x11D without the x^8
        # term = 0b00011101 = 29.
        assert GF.mul(2, 128) == 29

    @given(a=st.integers(1, 255))
    def test_inverse(self, a):
        assert GF.mul(a, GF.inverse(a)) == 1

    @given(a=st.integers(0, 255), b=st.integers(1, 255))
    def test_div_inverts_mul(self, a, b):
        assert GF.div(GF.mul(a, b), b) == a

    @given(a=st.integers(0, 255), b=st.integers(0, 255),
           c=st.integers(0, 255))
    @settings(max_examples=50)
    def test_distributive(self, a, b, c):
        left = GF.mul(a, GF.add(b, c))
        right = GF.add(GF.mul(a, b), GF.mul(a, c))
        assert left == right

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF.div(5, 0)
        with pytest.raises(ZeroDivisionError):
            GF.inverse(0)

    def test_bulk_matches_scalar(self):
        data = np.arange(256, dtype=np.uint8)
        for coefficient in (0, 1, 2, 87, 255):
            bulk = GF.mul_slice(coefficient, data)
            scalar = [GF.mul(coefficient, int(x)) for x in data]
            assert bulk.tolist() == scalar

    def test_power(self):
        assert GF.power(2, 0) == 1
        assert GF.power(2, 1) == 2
        assert GF.power(2, 8) == 0x1D  # 2^8 = poly remainder


class TestGFMatrix:
    def test_identity_times_anything(self):
        m = GFMatrix(np.array([[1, 2], [3, 4]], dtype=np.uint8))
        assert GFMatrix.identity(2).times(m) == m

    def test_invert_roundtrip(self):
        m = GFMatrix.vandermonde(3, 3)
        product = m.times(m.invert())
        assert product == GFMatrix.identity(3)

    def test_singular_rejected(self):
        singular = GFMatrix(np.array([[1, 1], [1, 1]], dtype=np.uint8))
        with pytest.raises(ValueError, match="singular"):
            singular.invert()

    def test_shape_mismatch_rejected(self):
        a = GFMatrix.identity(2)
        b = GFMatrix.identity(3)
        with pytest.raises(ValueError):
            a.times(b)

    def test_vandermonde_values(self):
        v = GFMatrix.vandermonde(3, 3)
        assert v.data[0].tolist() == [1, 0, 0]
        assert v.data[1].tolist() == [1, 1, 1]
        assert v.data[2].tolist() == [1, 2, 4]


class TestCodec:
    def test_systematic(self):
        """Encoding leaves data shards unchanged (identity top)."""
        codec = ReedSolomonCodec(4, 2)
        top = codec.matrix.select_rows(range(4))
        assert top == GFMatrix.identity(4)

    def test_encode_verify(self):
        codec = ReedSolomonCodec(8, 2)
        blocks = [os.urandom(128) for _ in range(8)]
        parity = codec.encode(blocks)
        assert len(parity) == 2
        assert codec.verify(blocks, parity)
        corrupted = parity[0][:-1] + bytes([parity[0][-1] ^ 1])
        assert not codec.verify(blocks, [corrupted, parity[1]])

    def test_reconstruct_after_two_erasures(self):
        codec = ReedSolomonCodec(8, 2)
        blocks = [os.urandom(64) for _ in range(8)]
        parity = codec.encode(blocks)
        shards = {i: b for i, b in enumerate(blocks + parity)}
        del shards[0], shards[5]  # two failures, the code's design point
        assert codec.reconstruct(shards, 64) == blocks

    def test_too_few_shards_rejected(self):
        codec = ReedSolomonCodec(4, 2)
        with pytest.raises(ValueError, match="need 4"):
            codec.reconstruct({0: b"x"}, 1)

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.binary(min_size=8, max_size=512).filter(
            lambda b: len(b) % 8 == 0),
        drop=st.sets(st.integers(0, 9), min_size=2, max_size=2),
    )
    def test_any_two_erasures_recoverable(self, data, drop):
        """Property: any 8 of the 10 shards reconstruct the data."""
        codec = ReedSolomonCodec(8, 2)
        stripe = len(data) // 8
        blocks = [data[i * stripe:(i + 1) * stripe] for i in range(8)]
        parity = codec.encode(blocks)
        shards = {i: b for i, b in enumerate(blocks + parity)}
        for index in drop:
            del shards[index]
        assert codec.reconstruct(shards, stripe) == blocks

    def test_encode_request_shape(self):
        codec = ReedSolomonCodec(8, 2)
        parity = codec.encode_request(bytes(4096))
        assert len(parity) == 1024  # 2 shards x 512 B

    def test_misaligned_request_rejected(self):
        codec = ReedSolomonCodec(8, 2)
        with pytest.raises(ValueError):
            codec.encode_request(bytes(4095))

    def test_shard_count_limits(self):
        with pytest.raises(ValueError):
            ReedSolomonCodec(250, 20)
        with pytest.raises(ValueError):
            ReedSolomonCodec(0, 2)


def make_design(instances):
    design = RsDesign(instances=instances,
                      line_rate_bytes_per_cycle=None)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    return design


def request_frame(design, payload):
    return build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                CLIENT_IP, design.server_ip, 5555,
                                7000, payload)


class TestRsDesign:
    def test_parity_reply_is_correct(self):
        design = make_design(1)
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        request = os.urandom(4096)
        design.inject(request_frame(design, request), 0)
        design.sim.run_until(lambda: sink.count >= 1, max_cycles=5000)
        reply = parse_frame(sink.frames[0][0])
        codec = ReedSolomonCodec(8, 2)
        assert reply.payload == codec.encode_request(request)

    def test_round_robin_across_instances(self):
        design = make_design(4)
        sink = FrameSink(design.eth_tx, keep_frames=False)
        design.sim.add(sink)
        for _ in range(8):
            design.inject(request_frame(design, bytes(4096)),
                          design.sim.cycle)
        design.sim.run_until(lambda: sink.count >= 8, max_cycles=20000)
        assert [tile.requests for tile in design.rs_tiles] == [2, 2, 2, 2]

    def test_single_instance_rate_is_15gbps(self):
        design = make_design(1)
        source = FrameSource(design.inject,
                             lambda i: request_frame(design, bytes(4096)),
                             rate=None)
        sink = FrameSink(design.eth_tx, keep_frames=False)
        design.sim.add(source)
        design.sim.add(sink)
        design.sim.run(60_000)
        consumed = design.total_requests * 4096 * 8
        gbps = consumed / (design.sim.cycle * params.CYCLE_TIME_S) / 1e9
        assert 13.5 <= gbps <= 16.0  # paper: 15 Gbps/instance

    def test_four_instances_scale_out(self):
        design = make_design(4)
        source = FrameSource(design.inject,
                             lambda i: request_frame(design, bytes(4096)),
                             rate=None)
        sink = FrameSink(design.eth_tx, keep_frames=False)
        design.sim.add(source)
        design.sim.add(sink)
        design.sim.run(60_000)
        consumed = design.total_requests * 4096 * 8
        gbps = consumed / (design.sim.cycle * params.CYCLE_TIME_S) / 1e9
        assert 55.0 <= gbps <= 65.0  # paper: 62 Gbps with 4 instances

    def test_metadata_log_tracks_bandwidth(self):
        design = make_design(1)
        source = FrameSource(design.inject,
                             lambda i: request_frame(design, bytes(4096)),
                             rate=None, count=20)
        sink = FrameSink(design.eth_tx, keep_frames=False)
        design.sim.add(source)
        design.sim.add(sink)
        design.sim.run_until(lambda: sink.count >= 20, max_cycles=30000)
        tile = design.rs_tiles[0]
        assert len(tile.metadata_log) == 20
        assert 13.0 <= tile.logged_goodput_gbps() <= 16.5

    def test_misaligned_request_dropped(self):
        design = make_design(1)
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        design.inject(request_frame(design, bytes(100)), 0)
        design.sim.run(3000)
        assert sink.count == 0
        assert design.rs_tiles[0].bad_requests == 1


class TestCpuBaseline:
    def test_same_output_as_tile(self):
        baseline = CpuReedSolomonBaseline()
        request = os.urandom(4096)
        codec = ReedSolomonCodec(8, 2)
        assert baseline.encode_request(request) == \
            codec.encode_request(request)

    def test_table3_columns(self):
        baseline = CpuReedSolomonBaseline()
        previous = None
        for instances in (1, 2, 3, 4):
            result = baseline.measure(instances)
            assert result.goodput_gbps == pytest.approx(2.0 * instances)
            if previous is not None:
                assert result.energy_mj_per_op < previous
            previous = result.energy_mj_per_op

    def test_energy_near_paper(self):
        """Table III: CPU 1.1 -> 0.32 mJ/op for 1 -> 4 instances."""
        baseline = CpuReedSolomonBaseline()
        assert baseline.measure(1).energy_mj_per_op == \
            pytest.approx(1.1, rel=0.1)
        assert baseline.measure(4).energy_mj_per_op == \
            pytest.approx(0.32, rel=0.15)
