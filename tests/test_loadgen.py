"""Tests for the open-loop load-generation subsystem.

Pinned-seed property tests bound the arrival processes (empirical mean
against the configured rate, Zipf rank-frequency against the power
law), unit tests pin the ``OpenLoopSource`` admission boundary, a
regression test drives ``FrameSource`` at twice line rate, and the
sweep tests pin the acceptance shape: a monotone goodput curve that
saturates at the knee with the p999 tail blowing up past it —
byte-identical across runs and across kernel x mesh x tile backends.
"""

import json

import pytest

from repro.loadgen.arrivals import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    ZipfPopularity,
    make_arrivals,
)
from repro.loadgen.source import OVERRUN_REASON, OpenLoopSource
from repro.sim.rng import SeededStreams

MEAN = 100.0
N_GAPS = 5000


def empirical_mean(process, n=N_GAPS):
    last = 0.0
    total = 0.0
    for _ in range(n):
        t = process.next_arrival()
        total += t - last
        last = t
    return total / n


class TestArrivalProcesses:
    def test_poisson_mean_in_bounds(self):
        streams = SeededStreams(0xBEE)
        process = make_arrivals("poisson", MEAN, streams)
        assert 95.0 < empirical_mean(process) < 105.0

    def test_bursty_mean_in_bounds(self):
        streams = SeededStreams(0xBEE)
        process = make_arrivals("bursty", MEAN, streams)
        assert 90.0 < empirical_mean(process) < 110.0

    def test_bursty_is_burstier_than_poisson(self):
        """Same offered load, higher variance: the point of the knob."""
        def gap_variance(process, n=N_GAPS):
            last, gaps = 0.0, []
            for _ in range(n):
                t = process.next_arrival()
                gaps.append(t - last)
                last = t
            mean = sum(gaps) / n
            return sum((g - mean) ** 2 for g in gaps) / n

        poisson = make_arrivals("poisson", MEAN, SeededStreams(1))
        bursty = make_arrivals("bursty", MEAN, SeededStreams(1))
        assert gap_variance(bursty) > 2 * gap_variance(poisson)

    def test_diurnal_mean_in_bounds(self):
        streams = SeededStreams(0xBEE)
        process = make_arrivals("diurnal", MEAN, streams,
                                period_cycles=50_000.0)
        assert 85.0 < empirical_mean(process) < 115.0

    def test_arrivals_strictly_increase(self):
        for kind in ("poisson", "bursty", "diurnal"):
            process = make_arrivals(kind, MEAN, SeededStreams(7))
            last = 0.0
            for _ in range(1000):
                t = process.next_arrival()
                assert t > last, kind
                last = t

    def test_same_seed_same_schedule(self):
        a = make_arrivals("poisson", MEAN, SeededStreams(42))
        b = make_arrivals("poisson", MEAN, SeededStreams(42))
        assert [a.next_arrival() for _ in range(200)] == \
            [b.next_arrival() for _ in range(200)]

    def test_processes_draw_independent_substreams(self):
        """One root seed, different named substreams: adding a process
        never perturbs another's schedule."""
        solo = make_arrivals("poisson", MEAN, SeededStreams(42))
        schedule = [solo.next_arrival() for _ in range(100)]
        streams = SeededStreams(42)
        make_arrivals("bursty", MEAN, streams)  # a second consumer
        again = make_arrivals("poisson", MEAN, streams)
        assert [again.next_arrival() for _ in range(100)] == schedule

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="self_similar"):
            make_arrivals("self_similar", MEAN, SeededStreams(1))

    def test_bad_parameters_raise(self):
        rng = SeededStreams(1).stream("x")
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, rng)
        with pytest.raises(ValueError):
            BurstyArrivals(MEAN, rng, burst_len=0)
        with pytest.raises(ValueError):
            BurstyArrivals(MEAN, rng, duty=0.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(MEAN, rng, amplitude=1.0)


class TestZipfPopularity:
    def sample_counts(self, n_keys=16, skew=1.0, n=20_000, seed=0xBEE):
        zipf = ZipfPopularity(n_keys, skew,
                              SeededStreams(seed).stream("z"))
        counts = [0] * n_keys
        for _ in range(n):
            counts[zipf.sample()] += 1
        return counts

    def test_rank_frequency_follows_power_law(self):
        counts = self.sample_counts()
        # Rank 0 is hottest; the 0/1 ratio is 2 for skew=1.
        assert counts[0] > counts[1] > counts[15]
        ratio = counts[0] / counts[1]
        assert 1.7 < ratio < 2.3
        # And the 0/7 ratio is 8.
        assert 6.0 < counts[0] / counts[7] < 10.5

    def test_zero_skew_is_uniform(self):
        counts = self.sample_counts(skew=0.0)
        expected = sum(counts) / len(counts)
        for count in counts:
            assert abs(count - expected) < 0.2 * expected

    def test_samples_cover_the_key_space(self):
        counts = self.sample_counts(n_keys=4, n=1000)
        assert all(count > 0 for count in counts)

    def test_deterministic(self):
        assert self.sample_counts() == self.sample_counts()

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfPopularity(0)
        with pytest.raises(ValueError):
            ZipfPopularity(4, skew=-1.0)


class FixedGaps:
    """Stub arrival process: a fixed interarrival gap."""

    def __init__(self, gap):
        self.gap = gap
        self._t = 0.0

    def next_arrival(self):
        self._t += self.gap
        return self._t


class TestOpenLoopSource:
    def make(self, gap=10.0, backlog=None, **kwargs):
        pushed = []
        source = OpenLoopSource(
            lambda frame, cycle: pushed.append((frame, cycle)),
            lambda seq, cycle: bytes(16),
            FixedGaps(gap),
            admission=backlog, **kwargs)
        return source, pushed

    def test_injects_on_schedule(self):
        source, pushed = self.make(gap=10.0, count=5)
        for cycle in range(60):
            source.step(cycle)
        assert source.offered == 5
        assert source.admitted == 5
        assert [cycle for _, cycle in pushed] == [10, 20, 30, 40, 50]
        assert source.done

    def test_catches_up_after_a_stall(self):
        """Open loop: arrivals that fell due during a stall all fire;
        the schedule does not stretch."""
        source, pushed = self.make(gap=10.0, count=6)
        source.step(59)  # first observation at cycle 59
        assert source.offered == 5
        assert source.admitted == 5

    def test_admission_overrun_counted_never_buffered(self):
        backlog = [0]
        source, pushed = self.make(gap=10.0, count=10,
                                   backlog=lambda: backlog[0],
                                   max_admission=4)
        for cycle in range(45):
            source.step(cycle)
        assert source.admitted == 4
        backlog[0] = 4  # the NIC is now full
        for cycle in range(45, 105):
            source.step(cycle)
        assert source.offered == 10
        assert source.admitted == 4
        assert source.offered_dropped == 6
        assert source.drop_reasons == {OVERRUN_REASON: 6}
        assert len(pushed) == 4  # nothing silently queued

    def test_horizon_bound(self):
        source, _ = self.make(gap=10.0, horizon_cycles=35)
        for cycle in range(100):
            source.step(cycle)
        assert source.offered == 3  # arrivals at 10, 20, 30
        assert source.done

    def test_requires_a_bound(self):
        with pytest.raises(ValueError):
            OpenLoopSource(lambda f, c: None, lambda s, c: b"",
                           FixedGaps(10.0))

    def test_quiescence_contract(self):
        source, _ = self.make(gap=10.0, count=2)
        assert source.is_idle()
        assert source.next_event_cycle() == 10
        for cycle in range(25):
            source.step(cycle)
        assert source.done
        assert source.next_event_cycle() is None


class TestFrameSourceOverrun:
    """Satellite regression: arrivals at twice line rate must be
    counted at the admission boundary, not queued without bound."""

    def drive(self, overrun):
        from repro.designs.harness import FrameSource
        from repro.designs.udp_stack import UdpEchoDesign
        from repro.loadgen.source import nic_backlog
        from repro.packet.builder import build_ipv4_udp_frame
        from repro.packet.ethernet import MacAddress
        from repro.packet.ipv4 import IPv4Address

        design = UdpEchoDesign()
        ip, mac = IPv4Address("10.0.0.1"), \
            MacAddress("02:00:00:00:00:01")
        design.add_client(ip, mac)
        frame = build_ipv4_udp_frame(
            mac, design.server_mac, ip, design.server_ip,
            20_000, design.udp_port, bytes(256))
        source = FrameSource(design.inject, lambda i: frame,
                             rate=100.0,  # 2x the 50 B/cy line rate
                             count=300,
                             backlog=nic_backlog(design),
                             max_backlog=16, overrun=overrun)
        design.sim.add(source)
        peak_backlog = 0
        while not source.done and design.sim.cycle < 100_000:
            design.sim.run(50)
            peak_backlog = max(peak_backlog,
                               len(design.eth_rx._rx_ready))
        return source, peak_backlog

    def test_drop_mode_counts_at_the_boundary(self):
        source, peak_backlog = self.drive("drop")
        assert source.offered == 300
        assert source.offered_dropped > 0
        assert source.sent + source.offered_dropped == source.offered
        assert source.drop_reasons[OVERRUN_REASON] == \
            source.offered_dropped
        # The hazard this pins: the backlog stays bounded by the
        # admission limit instead of growing with the rate mismatch.
        assert peak_backlog <= 17

    def test_block_mode_never_drops(self):
        source, peak_backlog = self.drive("block")
        assert source.offered == 300
        assert source.offered_dropped == 0
        assert source.sent == 300
        assert peak_backlog <= 17


class TestSweep:
    POINT_KWARGS = dict(payload_bytes=256, duration_cycles=20_000,
                        warmup_cycles=4_000, seed=7)

    def test_run_point_shape(self):
        from repro.loadgen.sweep import run_point
        point = run_point(30.0, **self.POINT_KWARGS)
        assert point["offered"] > 0
        assert point["delivered"] > 0
        assert point["delivery_ratio"] == 1.0
        assert point["goodput_gbps"] > 0
        assert point["p50_cycles"] <= point["p99_cycles"] <= \
            point["p999_cycles"]
        assert point["hot_key_frames"] > 0

    def test_curve_has_knee_and_tail_blowup(self):
        from repro.loadgen.sweep import sweep
        result = sweep([20.0, 40.0, 60.0, 80.0],
                       payload_bytes=256, duration_cycles=40_000,
                       warmup_cycles=8_000, seed=7)
        curve = result["curve"]
        goodputs = [p["goodput_gbps"] for p in curve]
        ratios = [p["delivery_ratio"] for p in curve]
        # Goodput rises to saturation...
        assert goodputs[1] > goodputs[0] * 1.5
        assert max(goodputs[2:]) >= goodputs[1]
        assert abs(goodputs[3] - goodputs[2]) < 0.1 * goodputs[2]
        # ...admission degrades monotonically past the knee...
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[0] == 1.0 and ratios[3] < 0.95
        assert curve[3]["offered_dropped"] > \
            curve[2]["offered_dropped"] > 0
        # ...and the tail blows up.
        assert curve[3]["p999_cycles"] > 2 * curve[0]["p999_cycles"]
        assert result["knee_gbps"] == 40.0

    def test_sweep_deterministic(self):
        from repro.loadgen.sweep import sweep
        a = sweep([25.0], **self.POINT_KWARGS)
        b = sweep([25.0], **self.POINT_KWARGS)
        assert json.dumps(a, sort_keys=True) == \
            json.dumps(b, sort_keys=True)

    @pytest.mark.parametrize("kernel,mesh,tile", [
        ("naive", "object", "object"),
        ("naive", "flat", "flat"),
        ("scheduled", "object", "flat"),
        ("scheduled", "flat", "object"),
    ])
    def test_sweep_identical_across_backends(self, kernel, mesh, tile):
        from repro.loadgen.sweep import run_point
        reference = run_point(30.0, **self.POINT_KWARGS)
        other = run_point(30.0, kernel=kernel, mesh_backend=mesh,
                          tile_backend=tile, **self.POINT_KWARGS)
        assert json.dumps(other, sort_keys=True) == \
            json.dumps(reference, sort_keys=True)

    def test_arrival_kinds_run_end_to_end(self):
        from repro.loadgen.sweep import run_point
        for arrival in ("bursty", "diurnal"):
            point = run_point(25.0, arrival=arrival,
                              **self.POINT_KWARGS)
            assert point["delivered"] > 0, arrival

    def test_sweep_document_is_schema_valid(self):
        from repro.loadgen.sweep import sweep, sweep_document
        from repro.tools.bench import validate_bench_document
        result = sweep([25.0], **self.POINT_KWARGS)
        document = sweep_document(result)
        assert validate_bench_document(document) is document
        metrics = document["results"]["loadgen_sweep"]["metrics"]
        assert "curve.0.goodput_gbps" in metrics
        assert metrics["knee_gbps"] == 25.0

    def test_payload_must_fit_the_tag(self):
        from repro.loadgen.sweep import run_point
        with pytest.raises(ValueError, match="payload_bytes"):
            run_point(30.0, payload_bytes=8)


class TestLoadCli:
    def test_sweep_output_and_determinism(self, tmp_path, capsys):
        from repro.tools.load import main
        args = ["--offered", "20,60", "--payload", "256",
                "--duration", "20000", "--warmup", "4000",
                "--seed", "7"]
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main([*args, "--out", str(first)]) == 0
        out = capsys.readouterr().out
        assert "knee:" in out
        assert main([*args, "--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        document = json.loads(first.read_text())
        assert document["schema"] == "repro.bench/1"

    def test_flows_mode(self, capsys):
        from repro.tools.load import main
        assert main(["--flows", "2", "--cc", "reno",
                     "--stream-bytes", "16384"]) == 0
        out = capsys.readouterr().out
        assert "jain=" in out
        assert "delivered=True" in out

    def test_rejects_bad_offered_list(self):
        from repro.tools.load import main
        with pytest.raises(SystemExit):
            main(["--offered", "0,-5"])
