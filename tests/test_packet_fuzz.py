"""Property/fuzz tests for the packet codec layer.

The vectorised checksum (32-bit-word deferred-carry fold, optional
numpy backend) and the header pack/unpack caches are pure
optimisations: every one of them must be bit-identical to the naive
form.  These tests pin that with seeded random fuzzing —

- ``internet_checksum`` against an embedded reference byte-pair loop
  over random odd/even-length buffers;
- ``incremental_update`` (RFC 1071/1624) against a full recompute
  after splicing random words;
- pack -> unpack round-trips for every header codec (Ethernet with
  and without 802.1Q, IPv4 with options, UDP, TCP with options,
  VXLAN), with the caches hot;
- truncated/garbage rejection, so the caches never launder a buffer
  past a validation.
"""

import random
import struct

import pytest

from repro.packet.checksum import (
    incremental_update,
    internet_checksum,
    set_checksum_backend,
    verify_checksum,
)
from repro.packet.ethernet import EthernetHeader, MacAddress
from repro.packet.ipv4 import IPv4Address, IPv4Header
from repro.packet.tcp import TcpHeader
from repro.packet.udp import UdpHeader
from repro.packet.vxlan import VxlanHeader


def reference_checksum(data: bytes) -> int:
    """The classic byte-pair loop — the RFC 1071 definition."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def random_bytes(rng: random.Random, length: int) -> bytes:
    return rng.randbytes(length)


class TestChecksumEquivalence:
    CORNERS = [
        b"",
        b"\x00",
        b"\xff",
        b"\x00\x00",
        b"\xff\xff",
        b"\xff\xff\xff\xff",
        b"\xff\xfe",
        b"\x00\x01",
        b"\xff" * 41,
        b"\x00" * 64,
    ]

    def test_corner_buffers(self):
        for buf in self.CORNERS:
            assert internet_checksum(buf) == reference_checksum(buf), buf

    def test_random_odd_and_even_buffers(self):
        rng = random.Random(0xC0FFEE)
        for _ in range(600):
            buf = random_bytes(rng, rng.randrange(0, 80))
            assert internet_checksum(buf) == reference_checksum(buf), buf
        for _ in range(40):
            buf = random_bytes(rng, rng.randrange(1000, 2000))
            assert internet_checksum(buf) == reference_checksum(buf)

    def test_verify_checksum_of_valid_header(self):
        rng = random.Random(7)
        for _ in range(100):
            buf = bytearray(random_bytes(rng, 20))
            buf[10:12] = b"\x00\x00"
            csum = internet_checksum(bytes(buf))
            buf[10:12] = struct.pack("!H", csum)
            assert verify_checksum(bytes(buf))

    def test_numpy_backend_equivalence(self):
        pytest.importorskip("numpy")
        rng = random.Random(0xBEE)
        try:
            set_checksum_backend("numpy")
            for _ in range(300):
                buf = random_bytes(rng, rng.randrange(0, 80))
                assert internet_checksum(buf) == reference_checksum(buf)
            for _ in range(20):
                buf = random_bytes(rng, rng.randrange(1400, 1600))
                assert internet_checksum(buf) == reference_checksum(buf)
            for buf in self.CORNERS:
                assert internet_checksum(buf) == reference_checksum(buf)
        finally:
            set_checksum_backend("words")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_checksum_backend("simd")


class TestIncrementalUpdate:
    def test_random_splices_match_full_recompute(self):
        """Patching any even-aligned slice must equal recomputing."""
        rng = random.Random(0x1624)
        for _ in range(500):
            length = rng.randrange(2, 60) * 2
            buf = bytearray(random_bytes(rng, length))
            offset = rng.randrange(0, length // 2) * 2
            span = rng.randrange(1, min(5, length // 2 - offset // 2) + 1) * 2
            old = bytes(buf[offset:offset + span])
            new = random_bytes(rng, span)
            checksum = internet_checksum(bytes(buf))
            buf[offset:offset + span] = new
            if not any(buf):
                # An all-zero result is the RFC 1624 0x0000/0xFFFF
                # representation corner; no real header hits it.
                continue
            assert incremental_update(checksum, old, new) == \
                internet_checksum(bytes(buf))

    def test_odd_length_words_are_padded(self):
        checksum = internet_checksum(b"\x12\x34\x56")
        updated = incremental_update(checksum, b"\x56", b"\x78")
        assert updated == internet_checksum(b"\x12\x34\x78")

    def test_empty_update_is_identity(self):
        checksum = internet_checksum(b"\xde\xad\xbe\xef")
        assert incremental_update(checksum, b"", b"") == checksum


def random_mac(rng: random.Random) -> MacAddress:
    return MacAddress(random_bytes(rng, 6))


def random_ip(rng: random.Random) -> IPv4Address:
    return IPv4Address(rng.randrange(0, 1 << 32))


class TestEthernetRoundTrip:
    def test_untagged_and_tagged(self):
        rng = random.Random(1)
        for _ in range(300):
            ethertype = rng.randrange(0x0600, 0x10000)
            if ethertype == 0x8100:
                continue  # would be indistinguishable from a 1Q tag
            tagged = rng.random() < 0.5
            header = EthernetHeader(
                dst=random_mac(rng), src=random_mac(rng),
                ethertype=ethertype,
                vlan=rng.randrange(0, 4096) if tagged else None,
                vlan_pcp=rng.randrange(0, 8) if tagged else 0,
            )
            payload = random_bytes(rng, rng.randrange(0, 40))
            parsed, rest = EthernetHeader.unpack(header.pack() + payload)
            assert parsed == header
            assert rest == payload

    def test_repeated_unpack_is_stable(self):
        """The unpack cache must return the same parse every time."""
        rng = random.Random(2)
        frame = EthernetHeader(dst=random_mac(rng), src=random_mac(rng),
                               ethertype=0x0800).pack() + b"payload"
        first, _ = EthernetHeader.unpack(frame)
        second, rest = EthernetHeader.unpack(frame)
        assert second == first
        assert rest == b"payload"

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 13)
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 12 + b"\x81\x00\x00")


class TestIPv4RoundTrip:
    def _random_header(self, rng: random.Random, payload_len: int):
        options = random_bytes(rng, rng.randrange(0, 11) * 4)
        return IPv4Header(
            src=random_ip(rng), dst=random_ip(rng),
            protocol=rng.randrange(0, 256),
            total_length=20 + len(options) + payload_len,
            ttl=rng.randrange(0, 256),
            identification=rng.randrange(0, 1 << 16),
            dscp=rng.randrange(0, 64),
            ecn=rng.randrange(0, 4),
            flags=rng.randrange(0, 8),
            fragment_offset=rng.randrange(0, 1 << 13),
            options=options,
        )

    def test_random_headers_round_trip(self):
        rng = random.Random(4)
        for _ in range(300):
            payload = random_bytes(rng, rng.randrange(0, 60))
            header = self._random_header(rng, len(payload))
            raw = header.pack()
            assert verify_checksum(raw[:header.header_len])
            parsed, rest = IPv4Header.unpack(raw + payload)
            assert parsed == header
            assert rest == payload

    def test_identification_variants_share_template(self):
        """The pack template cache patches the ident in; every ident
        must still carry a correct checksum."""
        rng = random.Random(5)
        base = self._random_header(rng, 8)
        for ident in (0, 1, 0xFFFF, 0x1234, 0xFF00):
            header = IPv4Header(
                src=base.src, dst=base.dst, protocol=base.protocol,
                total_length=base.total_length, ttl=base.ttl,
                identification=ident, dscp=base.dscp, ecn=base.ecn,
                flags=base.flags, fragment_offset=base.fragment_offset,
                options=base.options,
            )
            raw = header.pack()
            assert verify_checksum(raw[:header.header_len])
            parsed, _ = IPv4Header.unpack(raw + b"\x00" * 8)
            assert parsed.identification == ident

    def test_corrupted_checksum_rejected(self):
        rng = random.Random(6)
        header = self._random_header(rng, 4)
        raw = bytearray(header.pack() + b"\x00" * 4)
        raw[10] ^= 0xFF
        with pytest.raises(ValueError):
            IPv4Header.unpack(bytes(raw))

    def test_truncated_rejected(self):
        rng = random.Random(7)
        header = self._random_header(rng, 12)
        raw = header.pack() + b"\x00" * 12
        for cut in (1, 10, 19, len(raw) - 1):
            with pytest.raises(ValueError):
                IPv4Header.unpack(raw[:cut])

    def test_cache_hit_still_validates_length(self):
        """A cached parse must re-check the buffer it is handed."""
        rng = random.Random(8)
        header = self._random_header(rng, 16)
        raw = header.pack() + b"\x00" * 16
        IPv4Header.unpack(raw)  # warm the cache
        with pytest.raises(ValueError):
            IPv4Header.unpack(raw[:header.header_len + 2])


class TestUdpRoundTrip:
    def test_random_headers_round_trip(self):
        rng = random.Random(9)
        for _ in range(300):
            payload = random_bytes(rng, rng.randrange(0, 60))
            header = UdpHeader(
                src_port=rng.randrange(0, 1 << 16),
                dst_port=rng.randrange(0, 1 << 16),
                length=8 + len(payload),
                checksum=rng.randrange(0, 1 << 16),
            )
            parsed, rest = UdpHeader.unpack(header.pack() + payload)
            assert parsed == header
            assert rest == payload

    def test_checksummed_datagram_verifies(self):
        rng = random.Random(10)
        ip = IPv4Header(src=random_ip(rng), dst=random_ip(rng),
                        total_length=20 + 8 + 11)
        payload = b"hello world"
        header = UdpHeader(src_port=1234, dst_port=7, length=8 + 11)
        raw = header.pack_with_checksum(ip.pseudo_header(header.length),
                                        payload)
        parsed, rest = UdpHeader.unpack(raw + payload)
        assert parsed.verify(ip.pseudo_header(parsed.length), rest)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            UdpHeader.unpack(b"\x00" * 7)
        bad_length = UdpHeader(src_port=1, dst_port=2, length=100)
        with pytest.raises(ValueError):
            UdpHeader.unpack(bad_length.pack())


class TestTcpRoundTrip:
    def test_random_headers_round_trip(self):
        rng = random.Random(11)
        for _ in range(300):
            payload = random_bytes(rng, rng.randrange(0, 60))
            header = TcpHeader(
                src_port=rng.randrange(0, 1 << 16),
                dst_port=rng.randrange(0, 1 << 16),
                seq=rng.randrange(0, 1 << 32),
                ack=rng.randrange(0, 1 << 32),
                flags=rng.randrange(0, 64),
                window=rng.randrange(0, 1 << 16),
                urgent=rng.randrange(0, 1 << 16),
                options=random_bytes(rng, rng.randrange(0, 11) * 4),
                checksum=rng.randrange(0, 1 << 16),
            )
            parsed, rest = TcpHeader.unpack(header.pack() + payload)
            assert parsed == header
            assert rest == payload

    def test_checksummed_segment_verifies(self):
        rng = random.Random(12)
        ip = IPv4Header(src=random_ip(rng), dst=random_ip(rng),
                        protocol=6, total_length=20 + 20 + 5)
        header = TcpHeader(src_port=80, dst_port=5000, seq=1, ack=2)
        payload = b"abcde"
        raw = header.pack_with_checksum(
            ip.pseudo_header(header.header_len + len(payload)), payload)
        parsed, rest = TcpHeader.unpack(raw + payload)
        assert parsed.verify(
            ip.pseudo_header(parsed.header_len + len(rest)), rest)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            TcpHeader.unpack(b"\x00" * 19)
        header = TcpHeader(src_port=1, dst_port=2,
                           options=b"\x01\x01\x01\x01")
        with pytest.raises(ValueError):
            TcpHeader.unpack(header.pack()[:21])


class TestVxlanRoundTrip:
    def test_random_vnis_round_trip(self):
        rng = random.Random(13)
        for _ in range(200):
            header = VxlanHeader(vni=rng.randrange(0, 1 << 24))
            inner = random_bytes(rng, rng.randrange(0, 40))
            parsed, rest = VxlanHeader.unpack(header.pack() + inner)
            assert parsed == header
            assert rest == inner

    def test_missing_flag_rejected(self):
        with pytest.raises(ValueError):
            VxlanHeader.unpack(b"\x00" * 8)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            VxlanHeader.unpack(b"\x08\x00\x00")
