"""Tests for the cycle-driven simulation kernel."""

import pytest

from repro.sim.kernel import CycleSimulator, StagedFifo, Wakeable


class Counter:
    """Test component: counts its step/commit invocations."""

    def __init__(self):
        self.steps = 0
        self.commits = 0

    def step(self, cycle):
        self.steps += 1
        self.last_cycle = cycle

    def commit(self):
        self.commits += 1


class TestStagedFifo:
    def test_push_not_visible_until_commit(self):
        fifo = StagedFifo()
        fifo.push("a")
        assert len(fifo) == 0
        assert fifo.peek() is None
        fifo.commit()
        assert len(fifo) == 1
        assert fifo.peek() == "a"

    def test_fifo_order(self):
        fifo = StagedFifo()
        for item in ("a", "b", "c"):
            fifo.push(item)
        fifo.commit()
        assert [fifo.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_capacity_counts_staged(self):
        fifo = StagedFifo(capacity=2)
        fifo.push(1)
        assert fifo.can_accept()
        fifo.push(2)
        assert not fifo.can_accept()
        with pytest.raises(OverflowError):
            fifo.push(3)

    def test_capacity_frees_on_pop(self):
        fifo = StagedFifo(capacity=1)
        fifo.push(1)
        fifo.commit()
        assert not fifo.can_accept()
        fifo.pop()
        assert fifo.can_accept()

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            StagedFifo().pop()

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            StagedFifo(capacity=0)

    def test_occupancy_tracks_both(self):
        fifo = StagedFifo()
        fifo.push(1)
        fifo.commit()
        fifo.push(2)
        assert len(fifo) == 1
        assert fifo.occupancy == 2

    def test_drain(self):
        fifo = StagedFifo()
        fifo.push(1)
        fifo.push(2)
        fifo.commit()
        assert fifo.drain() == [1, 2]
        assert len(fifo) == 0

    def test_drain_includes_staged(self):
        """Drain empties the staging buffer too — staged items must not
        silently commit on the next tick after a drain."""
        fifo = StagedFifo()
        fifo.push(1)
        fifo.commit()
        fifo.push(2)  # staged, not yet committed
        assert fifo.drain() == [1, 2]
        assert len(fifo) == 0
        assert fifo.occupancy == 0
        fifo.commit()
        assert len(fifo) == 0  # nothing reappears

    def test_drain_staged_frees_capacity(self):
        fifo = StagedFifo(capacity=1)
        fifo.push(1)
        assert not fifo.can_accept()
        fifo.drain()
        assert fifo.can_accept()


class TestCycleSimulator:
    def test_step_then_commit_each_cycle(self):
        sim = CycleSimulator()
        comp = Counter()
        sim.add(comp)
        sim.run(5)
        assert comp.steps == 5
        assert comp.commits == 5
        assert sim.cycle == 5

    def test_run_until(self):
        sim = CycleSimulator()
        comp = Counter()
        sim.add(comp)
        consumed = sim.run_until(lambda: comp.steps >= 3)
        assert consumed == 3

    def test_run_until_timeout(self):
        sim = CycleSimulator()
        with pytest.raises(TimeoutError):
            sim.run_until(lambda: False, max_cycles=10)

    def test_registered_fifo_commits(self):
        sim = CycleSimulator()
        fifo = sim.register_fifo(StagedFifo())

        class Producer:
            def step(self, cycle):
                fifo.push(cycle)

            def commit(self):
                pass

        sim.add(Producer())
        sim.run(3)
        # Cycle 2's push commits at end of cycle 2; all three visible.
        assert fifo.drain() == [0, 1, 2]

    def test_two_phase_isolation(self):
        """A consumer never sees a value pushed in the same cycle."""
        sim = CycleSimulator()
        fifo = StagedFifo()
        seen = []

        class Producer:
            def step(self, cycle):
                fifo.push(cycle)

            def commit(self):
                fifo.commit()

        class Observer:
            def step(self, cycle):
                if fifo.peek() is not None:
                    seen.append((cycle, fifo.pop()))

            def commit(self):
                pass

        sim.add(Producer())
        sim.add(Observer())
        sim.run(4)
        assert seen == [(1, 0), (2, 1), (3, 2)]

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            CycleSimulator(kernel="turbo")


class SleepyConsumer(Wakeable):
    """Test component honouring the quiescence contract: drains a FIFO,
    sleeps while it is empty."""

    def __init__(self, fifo):
        self.fifo = fifo
        self.steps = 0
        self.drained = []

    def step(self, cycle):
        self.steps += 1
        while self.fifo.peek() is not None:
            self.drained.append((cycle, self.fifo.pop()))

    def commit(self):
        self.fifo.commit()

    def wake_sources(self):
        return (self.fifo,)

    def is_idle(self):
        return not self.fifo._items and not self.fifo._staged


class Alarm(Wakeable):
    """Test component that self-schedules: fires every ``period``."""

    def __init__(self, period):
        self.period = period
        self.fired = []
        self._next = period

    def step(self, cycle):
        if cycle >= self._next:
            self.fired.append(cycle)
            self._next = cycle + self.period

    def commit(self):
        pass

    def is_idle(self):
        return True

    def next_event_cycle(self):
        return self._next


class TestScheduledKernel:
    def test_idle_component_is_not_stepped(self):
        sim = CycleSimulator(kernel="scheduled")
        fifo = StagedFifo()
        consumer = SleepyConsumer(fifo)
        sim.add(consumer)
        sim.run(100)
        # Stepped once (cycle 0), found nothing, slept for the rest.
        assert consumer.steps == 1
        assert sim.idle_cycles_skipped == 99

    def test_fifo_push_wakes_consumer(self):
        sim = CycleSimulator(kernel="scheduled")
        fifo = StagedFifo()
        consumer = SleepyConsumer(fifo)
        sim.add(consumer)
        sim.run(10)
        assert consumer.steps == 1
        fifo.push("ping")  # external injection mid-quiescence
        sim.run(10)
        # Woken: the push commits, the consumer drains it next step.
        assert consumer.drained == [(11, "ping")]
        # ...then goes back to sleep instead of being stepped 10 times.
        assert consumer.steps <= 3

    def test_same_cycle_push_commits_on_schedule(self):
        """A producer stepping before a sleeping consumer wakes it in
        time for the consumer's FIFO to commit that same cycle — so the
        item is visible exactly one cycle after the push, as under the
        naive kernel."""
        results = {}
        for kernel in ("naive", "scheduled"):
            sim = CycleSimulator(kernel=kernel)
            fifo = StagedFifo()
            consumer = SleepyConsumer(fifo)

            class Producer:
                def step(self, cycle):
                    if cycle == 5:
                        fifo.push("x")

                def commit(self):
                    pass

            sim.add(Producer())
            sim.add(consumer)
            sim.run(20)
            results[kernel] = consumer.drained
        assert results["naive"] == results["scheduled"] == [(6, "x")]

    def test_timer_wheel_wakes_self_scheduling_component(self):
        sim = CycleSimulator(kernel="scheduled")
        alarm = Alarm(period=25)
        sim.add(alarm)
        sim.run(100)
        assert alarm.fired == [25, 50, 75]
        assert sim.idle_cycles_skipped > 0

    def test_timer_matches_naive_schedule(self):
        naive = CycleSimulator(kernel="naive")
        a1 = Alarm(period=7)
        naive.add(a1)
        naive.run(60)
        sched = CycleSimulator(kernel="scheduled")
        a2 = Alarm(period=7)
        sched.add(a2)
        sched.run(60)
        assert a1.fired == a2.fired

    def test_idle_skip_advances_clock_exactly(self):
        sim = CycleSimulator(kernel="scheduled")
        sim.add(SleepyConsumer(StagedFifo()))
        sim.run(1000)
        assert sim.cycle == 1000

    def test_naive_kernel_steps_everything(self):
        sim = CycleSimulator(kernel="naive")
        fifo = StagedFifo()
        consumer = SleepyConsumer(fifo)
        sim.add(consumer)
        sim.run(50)
        assert consumer.steps == 50
        assert sim.idle_cycles_skipped == 0

    def test_component_without_contract_always_stepped(self):
        sim = CycleSimulator(kernel="scheduled")
        comp = Counter()
        sim.add(comp)
        sim.run(50)
        assert comp.steps == 50
        assert sim.idle_cycles_skipped == 0

    def test_run_until_skips_and_still_times_out(self):
        sim = CycleSimulator(kernel="scheduled")
        sim.add(SleepyConsumer(StagedFifo()))
        with pytest.raises(TimeoutError):
            sim.run_until(lambda: False, max_cycles=500)
        assert sim.cycle == 500

    def test_run_until_condition_met_via_timer(self):
        sim = CycleSimulator(kernel="scheduled")
        alarm = Alarm(period=40)
        sim.add(alarm)
        consumed = sim.run_until(lambda: alarm.fired, max_cycles=1000)
        assert alarm.fired == [40]
        assert consumed <= 41

    def test_explicit_wake_api(self):
        sim = CycleSimulator(kernel="scheduled")
        fifo = StagedFifo()
        consumer = SleepyConsumer(fifo)
        sim.add(consumer)
        sim.run(10)
        before = consumer.steps
        sim.wake(consumer)
        sim.run(1)
        assert consumer.steps == before + 1

    def test_wake_early_is_harmless(self):
        """Waking an idle component early must not change behaviour —
        its step is a no-op and it re-idles."""
        sim = CycleSimulator(kernel="scheduled")
        alarm = Alarm(period=30)
        sim.add(alarm)
        sim.run(10)
        sim.wake(alarm)
        sim.run(90)
        assert alarm.fired == [30, 60, 90]


class TestRunUntilExactness:
    """run_until must observe the condition at the exact cycle it
    first becomes true, even when that cycle falls in the middle of an
    idle-skipped stretch (ROADMAP: predicates were previously only
    evaluated at wake boundaries)."""

    def test_predicate_mid_idle_stretch_not_overshot(self):
        sim = CycleSimulator(kernel="scheduled")
        sim.add(SleepyConsumer(StagedFifo()))
        # Fully quiescent design: without re-evaluation the skip would
        # jump straight to max_cycles and overshoot to 10_000.
        consumed = sim.run_until(lambda: sim.cycle >= 337,
                                 max_cycles=10_000)
        assert sim.cycle == 337
        assert consumed == 337

    def test_predicate_between_timer_wakes(self):
        sim = CycleSimulator(kernel="scheduled")
        alarm = Alarm(period=100)
        sim.add(alarm)
        # 250 lies strictly inside the idle stretch (200, 300).
        sim.run_until(lambda: sim.cycle >= 250, max_cycles=1000)
        assert sim.cycle == 250
        assert alarm.fired == [100, 200]

    def test_predicate_at_stretch_start_consumes_nothing_extra(self):
        sim = CycleSimulator(kernel="scheduled")
        sim.add(SleepyConsumer(StagedFifo()))
        sim.run(42)
        assert sim.run_until(lambda: sim.cycle >= 42) == 0
        assert sim.cycle == 42

    def test_naive_kernel_semantics_unchanged(self):
        sim = CycleSimulator(kernel="naive")
        comp = Counter()
        sim.add(comp)
        consumed = sim.run_until(lambda: sim.cycle >= 7)
        assert (sim.cycle, consumed) == (7, 7)
        assert comp.steps == 7

    def test_timeout_still_raised_when_never_true(self):
        sim = CycleSimulator(kernel="scheduled")
        sim.add(SleepyConsumer(StagedFifo()))
        with pytest.raises(TimeoutError):
            sim.run_until(lambda: False, max_cycles=123)
        assert sim.cycle == 123
