"""Tests for the cycle-driven simulation kernel."""

import pytest

from repro.sim.kernel import CycleSimulator, StagedFifo


class Counter:
    """Test component: counts its step/commit invocations."""

    def __init__(self):
        self.steps = 0
        self.commits = 0

    def step(self, cycle):
        self.steps += 1
        self.last_cycle = cycle

    def commit(self):
        self.commits += 1


class TestStagedFifo:
    def test_push_not_visible_until_commit(self):
        fifo = StagedFifo()
        fifo.push("a")
        assert len(fifo) == 0
        assert fifo.peek() is None
        fifo.commit()
        assert len(fifo) == 1
        assert fifo.peek() == "a"

    def test_fifo_order(self):
        fifo = StagedFifo()
        for item in ("a", "b", "c"):
            fifo.push(item)
        fifo.commit()
        assert [fifo.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_capacity_counts_staged(self):
        fifo = StagedFifo(capacity=2)
        fifo.push(1)
        assert fifo.can_accept()
        fifo.push(2)
        assert not fifo.can_accept()
        with pytest.raises(OverflowError):
            fifo.push(3)

    def test_capacity_frees_on_pop(self):
        fifo = StagedFifo(capacity=1)
        fifo.push(1)
        fifo.commit()
        assert not fifo.can_accept()
        fifo.pop()
        assert fifo.can_accept()

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            StagedFifo().pop()

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            StagedFifo(capacity=0)

    def test_occupancy_tracks_both(self):
        fifo = StagedFifo()
        fifo.push(1)
        fifo.commit()
        fifo.push(2)
        assert len(fifo) == 1
        assert fifo.occupancy == 2

    def test_drain(self):
        fifo = StagedFifo()
        fifo.push(1)
        fifo.push(2)
        fifo.commit()
        assert fifo.drain() == [1, 2]
        assert len(fifo) == 0

    def test_drain_includes_staged(self):
        """Drain empties the staging buffer too — staged items must not
        silently commit on the next tick after a drain."""
        fifo = StagedFifo()
        fifo.push(1)
        fifo.commit()
        fifo.push(2)  # staged, not yet committed
        assert fifo.drain() == [1, 2]
        assert len(fifo) == 0
        assert fifo.occupancy == 0
        fifo.commit()
        assert len(fifo) == 0  # nothing reappears

    def test_drain_staged_frees_capacity(self):
        fifo = StagedFifo(capacity=1)
        fifo.push(1)
        assert not fifo.can_accept()
        fifo.drain()
        assert fifo.can_accept()


class TestCycleSimulator:
    def test_step_then_commit_each_cycle(self):
        sim = CycleSimulator()
        comp = Counter()
        sim.add(comp)
        sim.run(5)
        assert comp.steps == 5
        assert comp.commits == 5
        assert sim.cycle == 5

    def test_run_until(self):
        sim = CycleSimulator()
        comp = Counter()
        sim.add(comp)
        consumed = sim.run_until(lambda: comp.steps >= 3)
        assert consumed == 3

    def test_run_until_timeout(self):
        sim = CycleSimulator()
        with pytest.raises(TimeoutError):
            sim.run_until(lambda: False, max_cycles=10)

    def test_registered_fifo_commits(self):
        sim = CycleSimulator()
        fifo = sim.register_fifo(StagedFifo())

        class Producer:
            def step(self, cycle):
                fifo.push(cycle)

            def commit(self):
                pass

        sim.add(Producer())
        sim.run(3)
        # Cycle 2's push commits at end of cycle 2; all three visible.
        assert fifo.drain() == [0, 1, 2]

    def test_two_phase_isolation(self):
        """A consumer never sees a value pushed in the same cycle."""
        sim = CycleSimulator()
        fifo = StagedFifo()
        seen = []

        class Producer:
            def step(self, cycle):
                fifo.push(cycle)

            def commit(self):
                fifo.commit()

        class Observer:
            def step(self, cycle):
                if fifo.peek() is not None:
                    seen.append((cycle, fifo.pop()))

            def commit(self):
                pass

        sim.add(Producer())
        sim.add(Observer())
        sim.run(4)
        assert seen == [(1, 0), (2, 1), (3, 2)]
