"""Tests for the periodic telemetry probe and its null fast path."""

from repro.designs import FrameSink, FrameSource, UdpEchoDesign
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame
from repro.telemetry import Tracer, attach_probe, attach_tracer

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def run_echo(cycles=3000, interval=500, trace=False, **design_kwargs):
    design = UdpEchoDesign(line_rate_bytes_per_cycle=None,
                           **design_kwargs)
    if trace:
        attach_tracer(design, Tracer())
    probe = attach_probe(design, interval=interval)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    frame = build_ipv4_udp_frame(
        CLIENT_MAC, design.server_mac, CLIENT_IP, design.server_ip,
        5555, design.udp_port, bytes(64))
    source = FrameSource(design.inject, lambda i: frame, rate=None)
    sink = FrameSink(design.eth_tx, keep_frames=False)
    design.sim.add(source)
    design.sim.add(sink)
    design.sim.run(cycles)
    return design, probe, sink


class TestNullFastPath:
    def test_interval_none_attaches_nothing(self):
        design = UdpEchoDesign()
        components_before = design.sim.stats()["components"]
        assert attach_probe(design, interval=None) is None
        assert design.sim.stats()["components"] == components_before

    def test_probe_does_not_change_behaviour(self):
        """Attached probes are read-only and timer-driven: frames out
        and every counter must be bit-identical with and without."""
        _, _, sink_off = run_echo(interval=None)
        design_on, probe, sink_on = run_echo(interval=500)
        assert sink_on.count == sink_off.count
        assert probe.samples_taken == 2999 // 500


class TestSampling:
    def test_cadence_and_cycles(self):
        _, probe, _ = run_echo(cycles=2600, interval=500)
        cycles = [s["cycle"] for s in probe.series.snapshots]
        assert cycles == [500, 1000, 1500, 2000, 2500]

    def test_snapshot_contents(self):
        design, probe, _ = run_echo()
        snapshot = probe.series.snapshots[-1]
        assert snapshot["total_flits"] > 0
        assert snapshot["busy_routers"] >= 1
        assert snapshot["links"]  # saturated echo moves flits
        tiles = snapshot["tiles"]
        assert set(tiles) == {t.name for t in design.tiles}
        eth_rx = tiles["eth_rx"]
        assert eth_rx["msgs_out"] > 0
        assert eth_rx["tx_hwm"] >= eth_rx["tx_backlog"]
        kernel = snapshot["kernel"]
        assert kernel["kernel"] in ("scheduled", "naive")
        assert kernel["component_steps"] > 0

    def test_registry_counters_monotonic(self):
        _, probe, _ = run_echo()
        flits = probe.registry.get("noc.flits_forwarded")
        assert flits is not None
        assert flits.value == \
            probe.series.snapshots[-1]["total_flits"]

    def test_latency_with_tracer(self):
        """With a recording tracer the probe extracts exact per-packet
        latencies incrementally; without one, only the cheap transit
        gauge is populated."""
        _, probe, _ = run_echo(trace=True)
        latency = probe.series.snapshots[-1]["latency"]
        assert latency["completed"] > 0
        assert latency["p50"] is not None
        assert latency["p999"] >= latency["p50"]
        hist = probe.registry.get("latency.e2e_cycles")
        assert hist.count > 0

        _, probe_untraced, _ = run_echo(trace=False)
        latency = probe_untraced.series.snapshots[-1]["latency"]
        assert latency["completed"] == 0
        assert latency["last_transit"] > 0

    def test_faults_surface_when_attached(self):
        from repro.faults import FaultPlan
        plan = FaultPlan(seed=3).wire(drop=0.05)
        _, probe, _ = run_echo(fault_plan=plan)
        snapshot = probe.series.snapshots[-1]
        assert "faults" in snapshot
        assert sum(snapshot["faults"].values()) > 0

    def test_write_and_reload(self, tmp_path):
        from repro.telemetry import SnapshotSeries
        _, probe, _ = run_echo()
        path = tmp_path / "series.json"
        probe.write(str(path))
        loaded = SnapshotSeries.load(str(path))
        assert len(loaded.snapshots) == probe.samples_taken


class TestBackends:
    def test_high_water_identical_across_backends(self):
        """The flat backend inlines FIFO commits, so its high-water
        tracking must stay value-identical to StagedFifo's."""
        from repro.telemetry import design_counters

        def water(backend):
            design, _, _ = run_echo(mesh_backend=backend)
            counters = design_counters(design)
            tiles = {t.name: (t.eject_high_water,
                              t.tx_backlog_high_water)
                     for t in counters["tiles"]}
            return tiles, counters["router_input_high_water"]

        assert water("flat") == water("object")

    def test_probe_works_on_object_backend_and_naive_kernel(self):
        _, probe_obj, sink_obj = run_echo(mesh_backend="object")
        _, probe_naive, sink_naive = run_echo(kernel="naive")
        assert sink_obj.count == sink_naive.count
        assert probe_obj.samples_taken == probe_naive.samples_taken
        # Cross-config totals agree: same design, same traffic.
        last_obj = probe_obj.series.snapshots[-1]
        last_naive = probe_naive.series.snapshots[-1]
        assert last_obj["total_flits"] == last_naive["total_flits"]
