"""Cross-module property tests: randomised end-to-end invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config.schema import ChainSpec, DesignSpec, DestSpec, TileSpec
from repro.config.validate import ValidationError, validate
from repro.designs import FrameSink, UdpEchoDesign
from repro.designs.tcp_stack import TcpServerDesign
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)
from repro.tcp.peer import SoftTcpPeer

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

_SLOW = dict(max_examples=10, deadline=None,
             suppress_health_check=[HealthCheck.too_slow])


class TestUdpEchoProperty:
    @settings(**_SLOW)
    @given(payloads=st.lists(st.binary(min_size=1, max_size=2000),
                             min_size=1, max_size=8))
    def test_every_datagram_comes_back_intact_and_in_order(self,
                                                           payloads):
        """UDP echo is a bijection on arbitrary payload sequences."""
        design = UdpEchoDesign(udp_port=7,
                               line_rate_bytes_per_cycle=None)
        design.add_client(CLIENT_IP, CLIENT_MAC)
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        for payload in payloads:
            design.inject(build_ipv4_udp_frame(
                CLIENT_MAC, design.server_mac, CLIENT_IP,
                design.server_ip, 5555, 7, payload,
            ), design.sim.cycle)
        design.sim.run_until(lambda: sink.count >= len(payloads),
                             max_cycles=100_000)
        echoed = [parse_frame(frame).payload
                  for frame, _ in sink.frames]
        assert echoed == payloads


class TestTcpStreamProperty:
    @settings(**_SLOW)
    @given(
        chunks=st.lists(st.binary(min_size=1, max_size=600),
                        min_size=1, max_size=5),
        mss=st.integers(80, 2000),
        request_size=st.sampled_from([16, 32, 64]),
    )
    def test_stream_echoes_regardless_of_segmentation(self, chunks,
                                                      mss,
                                                      request_size):
        """Whatever the client's send pattern and MSS, the echoed
        byte stream equals the sent stream, truncated to whole
        requests (the engine serves request_size units)."""
        design = TcpServerDesign(tcp_port=5000,
                                 request_size=request_size)
        design.add_client(CLIENT_IP, CLIENT_MAC)
        peer = SoftTcpPeer(design, CLIENT_IP, CLIENT_MAC,
                           design.server_ip, 5000, wire_cycles=40)
        peer.mss = mss
        design.sim.add(peer)
        peer.connect()
        stream = b"".join(chunks)
        for chunk in chunks:
            peer.send(chunk)
        whole = (len(stream) // request_size) * request_size
        if whole == 0:
            design.sim.run(20_000)
            assert bytes(peer.received) == b""
            return
        design.sim.run_until(lambda: len(peer.received) >= whole,
                             max_cycles=2_000_000)
        assert bytes(peer.received[:whole]) == stream[:whole]


def _spec_strategy():
    names = st.lists(
        st.text(alphabet="abcdefgh", min_size=1, max_size=4),
        min_size=1, max_size=6, unique=True,
    )

    @st.composite
    def spec(draw):
        width = draw(st.integers(1, 5))
        height = draw(st.integers(1, 5))
        tile_names = draw(names)
        tiles = []
        for name in tile_names:
            tiles.append(TileSpec(
                name=name,
                type="ip_rx",
                x=draw(st.integers(-1, width)),
                y=draw(st.integers(-1, height)),
                dests=[DestSpec(
                    key="default",
                    targets=[draw(st.sampled_from(
                        tile_names + ["ghost"]))],
                )] if draw(st.booleans()) else [],
            ))
        chains = []
        if draw(st.booleans()):
            chains.append(ChainSpec(tiles=draw(st.lists(
                st.sampled_from(tile_names + ["ghost"]),
                min_size=1, max_size=3))))
        return DesignSpec(name="fuzz", width=width, height=height,
                          tiles=tiles, chains=chains)

    return spec()


class TestConfigFuzz:
    @settings(max_examples=200, deadline=None)
    @given(spec=_spec_strategy())
    def test_validate_never_crashes(self, spec):
        """validate() always terminates in OK or ValidationError —
        no exceptions leak from arbitrary design descriptions."""
        try:
            report = validate(spec)
        except ValidationError:
            return
        # Valid designs have in-range, collision-free coordinates.
        coords = [tile.coord for tile in spec.tiles]
        assert len(set(coords)) == len(coords)
        for x, y in coords:
            assert 0 <= x < spec.width and 0 <= y < spec.height
        assert len(report.empty_coords) == \
            spec.width * spec.height - len(coords)
