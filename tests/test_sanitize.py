"""Tests for the dynamic sanitizer passes (BHV4xx) and the data-flow
routing pass (BHV5xx), driven through their seeded-bug fixtures.

Two properties per seeded bug:

- *detection*: the fixture produces exactly its finding code;
- *isolation*: no other pass misfires on it — the static passes stay
  clean on dynamic bugs and vice versa.

Plus the clean-design property: every shipped design sanitizes with
zero findings, which is what the CI sanitizer-smoke job pins.
"""

import pytest

from repro.analysis import SANITIZE_PASSES, analyze, analyze_dynamic
from repro.analysis.demo import (
    build_blind_forwarder_design,
    build_broken_wake_design,
    build_escaped_domain_design,
    build_idle_liar_design,
    build_leaky_eject_design,
    build_phantom_dest_design,
    build_stale_domain_design,
    build_step_parity_design,
)
from repro.analysis.sanitize import (
    DEFAULT_COMBOS,
    NAIVE_REFERENCE,
    build_design,
    conservation_ledger,
    default_traffic,
)
from repro.designs import UdpEchoDesign
from repro.faults import FaultPlan


def codes_of(report):
    return sorted({f.code for f in report.findings})


class TestCleanDesigns:
    """Shipped designs carry no seeded bugs: the sanitizer must agree."""

    @pytest.mark.parametrize("combo", list(DEFAULT_COMBOS),
                             ids=lambda c: "/".join(c))
    def test_udp_echo_sanitizes_clean(self, combo):
        report = analyze_dynamic(UdpEchoDesign, name="udp_echo",
                                 cycles=600, combos=[combo])
        assert report.findings == [], report.render()
        assert sorted(report.passes_run) == sorted(
            f"sanitize:{p}" for p in SANITIZE_PASSES)

    def test_udp_echo_clean_under_faults(self):
        plan = FaultPlan(seed=3).wire(drop=0.02, corrupt=0.02)
        report = analyze_dynamic(UdpEchoDesign, name="udp_echo",
                                 cycles=600,
                                 combos=[("scheduled", "flat", "flat")],
                                 fault_plan=plan)
        assert report.findings == [], report.render()

    def test_tcp_server_sanitizes_clean(self):
        from repro.designs import TcpServerDesign
        report = analyze_dynamic(TcpServerDesign, name="tcp_server",
                                 cycles=600,
                                 combos=[("scheduled", "object",
                                          "object")])
        assert report.findings == [], report.render()


class TestBrokenWake:
    """The canonical lost-wakeup design: static BHV301 plus dynamic
    BHV401/BHV402 — the sanitizer catching at runtime what the wake
    pass predicts at lint time."""

    def test_static_pass_predicts(self):
        report = analyze(build_broken_wake_design(), name="broken_wake")
        assert "BHV301" in codes_of(report)

    def test_sanitizer_confirms_dynamically(self):
        report = analyze_dynamic(build_broken_wake_design,
                                 name="broken_wake", cycles=400)
        codes = codes_of(report)
        assert "BHV401" in codes
        assert "BHV402" in codes


class TestIdleLiar:
    def test_bhv401_only(self):
        report = analyze_dynamic(build_idle_liar_design,
                                 name="idle_liar", cycles=400)
        assert codes_of(report) == ["BHV401"]
        finding = report.findings[0]
        assert "liar" in finding.location

    def test_static_passes_stay_silent(self):
        report = analyze(build_idle_liar_design(), name="idle_liar")
        assert report.findings == [], report.render()


class TestLeakyEject:
    def test_bhv403_only(self):
        report = analyze_dynamic(build_leaky_eject_design,
                                 name="leaky_eject", cycles=400)
        assert codes_of(report) == ["BHV403"]
        data = report.findings[0].data
        assert data["injected"] > data["ejected"] + data["in_flight"]

    def test_static_passes_stay_silent(self):
        report = analyze(build_leaky_eject_design(), name="leaky_eject")
        assert report.findings == [], report.render()


class TestStepParity:
    COMBOS = [("scheduled", "object", "object"), NAIVE_REFERENCE]

    def test_bhv404_under_kernel_divergence(self):
        report = analyze_dynamic(build_step_parity_design,
                                 name="step_parity", cycles=400,
                                 combos=self.COMBOS)
        assert codes_of(report) == ["BHV404"]
        assert report.findings[0].data["first_divergent_cycle"] >= 0

    def test_clean_under_default_combos(self):
        # Both default combos run the scheduled kernel, where the
        # step-count-dependent behaviour is self-consistent.
        report = analyze_dynamic(build_step_parity_design,
                                 name="step_parity", cycles=400)
        assert report.findings == [], report.render()

    def test_static_passes_stay_silent(self):
        report = analyze(build_step_parity_design(), name="step_parity")
        assert report.findings == [], report.render()


class TestDataflowFixtures:
    """Each BHV5xx fixture produces exactly its code, statically, and
    stays clean under the dynamic passes."""

    CASES = [
        (build_phantom_dest_design, "BHV501"),
        (build_stale_domain_design, "BHV502"),
        (build_escaped_domain_design, "BHV503"),
        (build_blind_forwarder_design, "BHV504"),
    ]

    @pytest.mark.parametrize("builder,code", CASES,
                             ids=[code for _, code in CASES])
    def test_exactly_its_code(self, builder, code):
        report = analyze(builder(), name=code)
        assert codes_of(report) == [code], report.render()

    @pytest.mark.parametrize("builder,code", CASES,
                             ids=[code for _, code in CASES])
    def test_dynamically_clean(self, builder, code):
        report = analyze_dynamic(builder, name=code, cycles=400)
        assert report.findings == [], report.render()


class TestPassSelection:
    def test_single_pass_runs_alone(self):
        report = analyze_dynamic(build_idle_liar_design,
                                 name="idle_liar", cycles=400,
                                 passes=["idle-truth"])
        assert report.passes_run == ["sanitize:idle-truth"]
        assert codes_of(report) == ["BHV401"]

    def test_unselected_pass_cannot_fire(self):
        report = analyze_dynamic(build_leaky_eject_design,
                                 name="leaky_eject", cycles=400,
                                 passes=["idle-truth", "lost-wake",
                                         "determinism"])
        assert report.findings == [], report.render()

    def test_unknown_pass_raises(self):
        with pytest.raises(KeyError, match="unknown sanitize pass"):
            analyze_dynamic(build_idle_liar_design, passes=["bogus"])

    def test_bad_cycles_raises(self):
        with pytest.raises(ValueError, match="cycles"):
            analyze_dynamic(build_idle_liar_design, cycles=0)

    def test_empty_combos_raises(self):
        with pytest.raises(ValueError, match="combo"):
            analyze_dynamic(build_idle_liar_design, combos=[])


class TestConservationLedger:
    def test_balances_on_a_clean_run(self):
        design = UdpEchoDesign()
        by_cycle = {}
        for at, fn in default_traffic(design, 400):
            by_cycle.setdefault(at, []).append(fn)
        for cycle in range(400):
            for fn in by_cycle.get(cycle, []):
                fn()
            design.sim.tick()
        ledger = conservation_ledger(design.mesh)
        assert ledger["injected"] == (ledger["ejected"]
                                      + ledger["in_flight"])
        assert ledger["injected"] > 0

    def test_detects_off_books_loss(self):
        design = build_design(build_leaky_eject_design,
                              ("scheduled", "object", "object"))
        design.send()
        for _ in range(50):
            design.sim.tick()
        ledger = conservation_ledger(design.mesh)
        assert ledger["injected"] > (ledger["ejected"]
                                     + ledger["in_flight"])


class TestBuildDesign:
    def test_passes_full_combo_to_shipped_designs(self):
        design = build_design(UdpEchoDesign, ("naive", "flat", "flat"))
        assert design.sim.kernel == "naive"
        assert design.sim.mesh_backend == "flat"

    def test_drops_unsupported_kwargs_for_fixtures(self):
        # Fixture builders accept only ``kernel``; the backend kwargs
        # must be silently retried away, not crash the run.
        design = build_design(build_idle_liar_design,
                              ("scheduled", "flat", "flat"))
        assert design.sim.kernel == "scheduled"

    def test_unrelated_type_errors_still_raise(self):
        def bad_factory(**kwargs):
            raise TypeError("completely unrelated failure")
        with pytest.raises(TypeError, match="unrelated"):
            build_design(bad_factory, ("scheduled", "object", "object"))


class TestDefaultTraffic:
    def test_schedules_injections_for_frame_designs(self):
        design = UdpEchoDesign()
        actions = default_traffic(design, 1000)
        assert actions, "expected scheduled traffic"
        assert all(0 <= at < 1000 for at, _fn in actions)

    def test_uses_send_hook_for_fixture_designs(self):
        design = build_idle_liar_design()
        # No inject, no send: an idle fixture gets an empty schedule.
        actions = default_traffic(design, 1000)
        assert actions == []
        leaky = build_leaky_eject_design()
        assert default_traffic(leaky, 1000), "send() hook not used"
