"""Tests for the baseline stacks: pipelined (Fig 8b), CALM/PANIC,
host-stack models, and the multi-stack design (Fig 12)."""

import itertools

import pytest

from repro import params
from repro.baselines import (
    CalmUdpEcho,
    Crossbar,
    CrossbarEndpoint,
    PipelinedUdpEchoDesign,
    demikernel_udp_goodput_gbps,
    linux_tcp_goodput_gbps,
    table1_configs,
)
from repro.baselines.hoststacks import demikernel_udp_kreqs, linux_tcp_kreqs
from repro.designs import FrameSink
from repro.designs.multi_stack import MultiStackDesign
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
)
from repro.sim.kernel import CycleSimulator

CLIENT_MAC = MacAddress("02:00:00:00:00:01")
CLIENT_IP = IPv4Address("10.0.0.1")


def saturate(design, frame, cycles=20000):
    """Inject at NoC rate and return the design's echo goodput."""
    class Source:
        def __init__(self):
            self._free = 0

        def step(self, cycle):
            if cycle >= self._free:
                design.inject(frame, cycle)
                self._free = cycle + max(1, (len(frame) + 24) // 64)

        def commit(self):
            pass

    design.sim.add(Source())
    design.sim.run(cycles)
    return design.goodput_gbps()


class TestPipelined:
    def make(self):
        design = PipelinedUdpEchoDesign(udp_port=7)
        design.add_client(CLIENT_IP, CLIENT_MAC)
        return design

    def frame(self, design, size=64):
        return build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                    CLIENT_IP, design.server_ip, 5555,
                                    7, bytes(size))

    def test_echo_works(self):
        design = self.make()
        design.inject(self.frame(design), 0)
        design.sim.run_until(lambda: design.frames_echoed >= 1,
                             max_cycles=2000)
        assert design.payload_bytes == 64

    def test_slightly_faster_than_beehive_at_small_sizes(self):
        """Fig 7: the pipelined design edges out Beehive at 64 B
        because it skips NoC message (de)construction."""
        from repro.designs import FrameSink as BeeSink, FrameSource
        from repro.designs import UdpEchoDesign

        pipelined = self.make()
        pipe_gbps = saturate(pipelined, self.frame(pipelined, 64))

        beehive = UdpEchoDesign(udp_port=7,
                                line_rate_bytes_per_cycle=None)
        beehive.add_client(CLIENT_IP, CLIENT_MAC)
        frame = build_ipv4_udp_frame(CLIENT_MAC, beehive.server_mac,
                                     CLIENT_IP, beehive.server_ip,
                                     5555, 7, bytes(64))
        source = FrameSource(beehive.inject, lambda i: frame, rate=None)
        sink = BeeSink(beehive.eth_tx, keep_frames=False)
        beehive.sim.add(source)
        beehive.sim.add(sink)
        beehive.sim.run(20000)
        bee_gbps = sink.payload_bytes * 8 / (
            beehive.sim.cycle * params.CYCLE_TIME_S) / 1e9
        assert pipe_gbps > bee_gbps
        assert pipe_gbps / bee_gbps < 1.5  # "slightly", not hugely

    def test_bad_checksum_dropped(self):
        design = self.make()
        frame = bytearray(self.frame(design))
        frame[-1] ^= 0xFF
        design.inject(bytes(frame), 0)
        design.sim.run(1000)
        assert design.frames_echoed == 0


class TestCalm:
    def make(self):
        design = CalmUdpEcho(udp_port=7)
        design.add_client(CLIENT_IP, CLIENT_MAC)
        return design

    def frame(self, design, size=64):
        return build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                    CLIENT_IP, design.server_ip, 5555,
                                    7, bytes(size))

    def test_echo_works(self):
        design = self.make()
        design.inject(self.frame(design), 0)
        design.sim.run_until(lambda: design.frames_echoed >= 1,
                             max_cycles=2000)

    def test_latency_close_to_beehive(self):
        """Section VII-C: CALM 362 ns vs Beehive 368 ns."""
        design = self.make()
        design.inject(self.frame(design, 1), 0)
        design.sim.run_until(lambda: design.frames_echoed >= 1,
                             max_cycles=2000)
        ns = design.last_transit_cycles * 4
        assert 320 <= ns <= 410

    def test_throughput_similar_to_beehive(self):
        """Fig 7: Beehive and CALM perform almost identically."""
        design = self.make()
        gbps = saturate(design, self.frame(design, 64))
        assert 8.0 <= gbps <= 11.5

    def test_endpoint_limit_enforced(self):
        """PANIC's crossbar: 8 endpoints, 4 for infrastructure."""
        sim = CycleSimulator()
        crossbar = Crossbar(sim)
        for index in range(MAX_USER := 4):
            crossbar.attach(CrossbarEndpoint(f"user{index}",
                                             lambda item, cycle: None))
        with pytest.raises(ValueError, match="8 endpoints"):
            crossbar.attach(CrossbarEndpoint("one_too_many",
                                             lambda item, cycle: None))

    def test_scheduler_drops_when_full(self):
        """PANIC avoids deadlock by dropping, not backpressure."""
        sim = CycleSimulator()
        crossbar = Crossbar(sim, buffer_packets=2)
        sink = CrossbarEndpoint("sink", lambda item, cycle: None)
        crossbar.attach(sink)
        for _ in range(5):
            crossbar.send("x", "sink", (bytes(64), 0), cycle=0)
        assert crossbar.scheduler_drops == 3


class TestHostStackModels:
    def test_table1_medians_and_tails(self):
        paper = {
            "linux_client/beehive": (11.6, 15.3),
            "linux_client/linux_accel": (17.6, 61.2),
            "dpdk_client/beehive": (4.08, 4.43),
            "dpdk_client/dpdk_accel": (6.22, 6.79),
        }
        for name, model in table1_configs().items():
            stats = model.run(n=40_000)
            median_target, p99_target = paper[name]
            assert stats.median_us == pytest.approx(median_target,
                                                    rel=0.12)
            assert stats.p99_us == pytest.approx(p99_target, rel=0.15)

    def test_direct_attach_always_wins(self):
        """The motivation claim: Beehive beats the CPU trampoline for
        both client stacks, at median and tail."""
        configs = table1_configs()
        for client in ("linux_client", "dpdk_client"):
            suffix = "linux_accel" if client == "linux_client" \
                else "dpdk_accel"
            direct = configs[f"{client}/beehive"].run(n=20_000)
            bounced = configs[f"{client}/{suffix}"].run(n=20_000)
            assert direct.median_us < bounced.median_us
            assert direct.p99_us < bounced.p99_us

    def test_linux_tail_amplification(self):
        """Linux p99/median >> DPDK p99/median (Table I's story)."""
        configs = table1_configs()
        linux = configs["linux_client/linux_accel"].run(n=40_000)
        dpdk = configs["dpdk_client/dpdk_accel"].run(n=40_000)
        assert linux.p99_us / linux.median_us > 2.5
        assert dpdk.p99_us / dpdk.median_us < 1.3

    def test_demikernel_anchor_points(self):
        assert demikernel_udp_kreqs(64) == pytest.approx(584, rel=0.01)
        assert demikernel_udp_goodput_gbps(64) == \
            pytest.approx(0.3, rel=0.05)
        # Far below line rate even at jumbo sizes (Fig 7).
        assert demikernel_udp_goodput_gbps(9000) < 15.0
        assert demikernel_udp_goodput_gbps(9000) > \
            demikernel_udp_goodput_gbps(64)

    def test_linux_tcp_anchor_points(self):
        assert linux_tcp_kreqs(64) == pytest.approx(843, rel=0.02)
        assert linux_tcp_goodput_gbps(64 * 1024) == pytest.approx(
            params.LINUX_TCP_PEAK_GBPS, rel=0.1)

    def test_bad_payload_rejected(self):
        with pytest.raises(ValueError):
            demikernel_udp_goodput_gbps(0)
        with pytest.raises(ValueError):
            linux_tcp_goodput_gbps(-5)


class TestMultiStack:
    def run_design(self, stacks, size, cycles=25000):
        design = MultiStackDesign(stacks=stacks,
                                  line_rate_bytes_per_cycle=None)
        mac = CLIENT_MAC
        ips = [IPv4Address(f"10.0.1.{i}") for i in range(1, 40)]
        for ip in ips:
            design.add_client(ip, mac)
        frames = [
            build_ipv4_udp_frame(mac, design.server_mac, ip,
                                 design.server_ip, 5000 + j, 7,
                                 bytes(size))
            for j, ip in enumerate(ips)
        ]
        cycler = itertools.cycle(frames)

        class Source:
            def __init__(self):
                self._free = 0

            def step(self, cycle):
                if cycle >= self._free:
                    frame = next(cycler)
                    design.inject(frame, cycle)
                    self._free = cycle + max(1, (len(frame) + 24) // 64)

            def commit(self):
                pass

        sinks = [FrameSink(s.eth_tx, keep_frames=False)
                 for s in design.stacks]
        design.sim.add(Source())
        design.sim.add_all(sinks)
        design.sim.run(cycles)
        payload = sum(s.payload_bytes for s in sinks)
        return payload * 8 / (design.sim.cycle
                              * params.CYCLE_TIME_S) / 1e9

    def test_two_stacks_double_small_packet_goodput(self):
        one = self.run_design(1, 64)
        two = self.run_design(2, 64)
        assert 1.8 <= two / one <= 2.2

    def test_stacks_converge_at_large_payloads(self):
        one = self.run_design(1, 1024)
        two = self.run_design(2, 1024)
        assert two / one < 1.15

    def test_flows_stay_on_one_stack(self):
        design = MultiStackDesign(stacks=2,
                                  line_rate_bytes_per_cycle=None)
        design.add_client(CLIENT_IP, CLIENT_MAC)
        frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                     CLIENT_IP, design.server_ip,
                                     5555, 7, bytes(64))
        for _ in range(10):
            design.inject(frame, design.sim.cycle)
        design.sim.run(5000)
        served = [stack.app.requests for stack in design.stacks]
        assert sorted(served) == [0, 10]  # one flow -> one stack
