"""Unit tests for the flat tile engine (``repro.tiles.flatcore``).

The cross-backend bit-identity is pinned by
``test_kernel_equivalence``; these tests cover the core's own API —
adoption, fast/object mode classification, views, wake plumbing,
``register_tiles`` validation — and the structural-lint interplay
(double-stepping an adopted tile is a BHV106).
"""

import pytest

from repro.analysis.structural import run as lint
from repro.designs.udp_stack import UdpEchoDesign
from repro.designs.multi_stack import MultiStackDesign
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame
from repro.sim.kernel import CycleSimulator
from repro.tiles.flatcore import FlatTileCore, register_tiles

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def echo_design(**kwargs):
    design = UdpEchoDesign(udp_port=7, **kwargs)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    return design


def echo_frame(design, payload=b"ping"):
    return build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                CLIENT_IP, design.server_ip,
                                5555, 7, payload)


class TestRegisterTiles:
    def test_flat_returns_core_object_returns_none(self):
        flat = echo_design(tile_backend="flat")
        assert isinstance(flat.tile_core, FlatTileCore)
        assert len(flat.tile_core.tiles) == len(flat.tiles)

        obj = echo_design(tile_backend="object")
        assert obj.tile_core is None

    def test_unknown_backend_rejected(self):
        sim = CycleSimulator()
        with pytest.raises(ValueError, match="tile backend"):
            register_tiles(sim, [], "vector")
        with pytest.raises(ValueError, match="tile backend"):
            CycleSimulator(tile_backend="vector")
        with pytest.raises(ValueError, match="tile backend"):
            echo_design(tile_backend="vector")

    def test_dict_of_tiles_accepted(self):
        design = echo_design(tile_backend="flat")
        sim = CycleSimulator()
        core = register_tiles(sim, {t.name: t for t in design.tiles},
                              "flat")
        assert [t.name for t in core.tiles] == \
            [t.name for t in design.tiles]

    def test_adopt_rejects_non_tiles(self):
        core = FlatTileCore()
        with pytest.raises(TypeError, match="adopt"):
            core.adopt(object())


class TestViews:
    def test_views_expose_name_kind_and_mode(self):
        design = echo_design(tile_backend="flat")
        core = design.tile_core
        views = core.views()
        assert [v.name for v in views] == [t.name for t in design.tiles]
        assert all(v.mode == "fast" for v in views)
        assert core.view("udp_rx").tile is design.udp_rx
        assert core.view(design.app).name == "app"

    def test_overriding_engine_hook_falls_back_to_object_mode(self):
        # The flow-hash load balancer overrides _pump_process (fan-out
        # service), so the core must not inline it.
        design = MultiStackDesign(stacks=2, tile_backend="flat")
        modes = {v.name: v.mode for v in design.tile_core.views()}
        assert modes["lb"] == "object"
        assert modes["udp_rx_0"] == "fast"

    def test_by_kind_counts(self):
        design = echo_design(tile_backend="flat")
        by_kind = design.tile_core.by_kind
        assert len(by_kind["udp_rx"]) == 1
        names = [design.tile_core.tiles[i].name
                 for i in by_kind["echo_app"]]
        assert names == ["app"]


class TestScheduling:
    def test_core_goes_idle_and_wakes_on_injection(self):
        design = echo_design(tile_backend="flat")
        core = design.tile_core
        design.sim.run(50)
        assert core.is_idle()
        assert core.busy_tiles == 0
        design.inject(echo_frame(design), design.sim.cycle)
        assert not core.is_idle()  # eth_rx's busy bit is set again
        design.sim.run(500)
        assert len(design.eth_tx.frames_out) == 1
        assert core.is_idle()

    def test_kernel_weight_matches_tile_count(self):
        design = echo_design(tile_backend="flat")
        assert design.tile_core.kernel_weight == len(design.tiles)

    def test_substeps_and_wake_sources_cover_all_tiles(self):
        design = echo_design(tile_backend="flat")
        core = design.tile_core
        assert core.kernel_substeps() == design.tiles
        assert core.wake_sources() == \
            [t.port.eject_fifo for t in design.tiles]


class TestLintIntegration:
    def test_flat_design_lints_clean(self):
        for backend in ("object", "flat"):
            design = echo_design(tile_backend=backend)
            assert [f.code for f in lint(design)] == []

    def test_double_adoption_is_flagged(self):
        design = echo_design(tile_backend="flat")
        second = FlatTileCore("second")
        second.adopt(design.eth_rx)
        design.sim.add(second)
        codes = [f.code for f in lint(design)
                 if f.code == "BHV106" and f.location == "eth_rx"]
        assert codes == ["BHV106"]

    def test_registered_and_adopted_is_flagged(self):
        design = echo_design(tile_backend="flat")
        design.sim.add(design.udp_rx)
        codes = [f.code for f in lint(design)
                 if f.code == "BHV106" and f.location == "udp_rx"]
        assert codes == ["BHV106"]
