"""Cross-validation: the Table I RTT model vs a discrete-event run.

The Table I benchmark samples an analytic sum of per-side costs.  This
test builds the same configuration as an actual closed-loop
client/server exchange in the event simulator — scheduled sends,
queued server turnaround, timestamped completions — and checks the two
agree.  If someone edits one model and not the other, this breaks.
"""

import pytest

from repro import params
from repro.baselines.hoststacks import (
    beehive_server,
    dpdk_side,
    linux_client_side,
    linux_server_side,
    pcie_trampoline,
    table1_configs,
    wire,
)
from repro.sim.events import EventSimulator
from repro.sim.rng import SeededStreams

N_REQUESTS = 20_000


def event_loop_rtts(components, n=N_REQUESTS, seed=0xE0E0):
    """Run the component chain as real events: each stage is a
    scheduled hop; the client is closed-loop."""
    sim = EventSimulator()
    rng = SeededStreams(seed).stream("crossval")
    rtts = []
    state = {"start": 0.0, "stage": 0}

    def advance():
        if state["stage"] == len(components):
            rtts.append(sim.now - state["start"])
            if len(rtts) >= n:
                return
            state["start"] = sim.now
            state["stage"] = 0
        stage_fn = components[state["stage"]]
        state["stage"] += 1
        sim.schedule(stage_fn(rng), advance)

    state["start"] = sim.now
    sim.schedule(0.0, advance)
    sim.run(max_events=n * (len(components) + 2) + 10)
    return sorted(rtts)


class TestCrossValidation:
    @pytest.mark.parametrize("name,components", [
        ("dpdk_client/beehive",
         [dpdk_side, wire, beehive_server, wire, dpdk_side]),
        ("linux_client/beehive",
         [linux_client_side, wire, beehive_server, wire,
          linux_client_side]),
        ("linux_client/linux_accel",
         [linux_client_side, wire, linux_server_side, pcie_trampoline,
          pcie_trampoline, linux_server_side, wire,
          linux_client_side]),
    ])
    def test_event_run_matches_analytic_model(self, name, components):
        analytic = table1_configs()[name].run(n=N_REQUESTS)
        event_rtts = event_loop_rtts(components)
        event_median = event_rtts[len(event_rtts) // 2] * 1e6
        event_p99 = event_rtts[int(len(event_rtts) * 0.99)] * 1e6
        assert event_median == pytest.approx(analytic.median_us,
                                             rel=0.05)
        assert event_p99 == pytest.approx(analytic.p99_us, rel=0.15)

    def test_closed_loop_throughput_is_inverse_rtt(self):
        rtts = event_loop_rtts(
            [dpdk_side, wire, beehive_server, wire, dpdk_side],
            n=5000,
        )
        mean_rtt = sum(rtts) / len(rtts)
        # One outstanding request: rate = 1 / mean RTT.
        expected_rate = 1.0 / mean_rtt
        assert expected_rate == pytest.approx(
            1e6 / (params.DPDK_STACK_ONEWAY_S * 2e6
                   + params.WIRE_SWITCH_ONEWAY_S * 2e6
                   + params.BEEHIVE_SERVER_S * 1e6
                   + 2 * params.DPDK_STACK_JITTER_S * 1e6),
            rel=0.05,
        )
