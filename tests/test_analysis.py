"""Tests for the pass-based design linter (repro.analysis)."""

import json

import pytest

from repro.analysis import (
    CODES,
    AnalysisReport,
    Finding,
    analyze,
    analyze_chains,
)
from repro.analysis.demo import build_broken_wake_design
from repro.deadlock.demo import Fig5Design
from repro.noc.routing import Port
from repro.tools.lint import _shipped_designs, main as lint_main


class TestFindingPipeline:
    def test_unregistered_code_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            Finding("BHV999", "nope")

    def test_severity_defaults_from_registry(self):
        assert Finding("BHV201", "x").severity == "error"
        assert Finding("BHV122", "x").severity == "warning"
        assert Finding("BHV305", "x").severity == "info"

    def test_report_ok_tracks_errors_only(self):
        report = AnalysisReport(target="t")
        report.extend([Finding("BHV122", "w"), Finding("BHV305", "i")])
        assert report.ok
        report.extend([Finding("BHV101", "e")])
        assert not report.ok

    def test_sorted_findings_errors_first(self):
        report = AnalysisReport(target="t")
        report.extend([Finding("BHV305", "i"), Finding("BHV101", "e"),
                       Finding("BHV110", "w")])
        severities = [f.severity for f in report.sorted_findings()]
        assert severities == ["error", "warning", "info"]

    def test_every_code_has_severity_and_description(self):
        for code, (severity, description) in CODES.items():
            assert severity in ("error", "warning", "info"), code
            assert description, code

    def test_unknown_pass_rejected(self):
        with pytest.raises(KeyError, match="unknown pass"):
            analyze(Fig5Design("b"), passes=["quantum"])


class TestDeadlockPass:
    def test_fig5a_cycle_reported_with_edge_path(self):
        """The paper's Fig 5a placement must produce a BHV201 finding
        whose witness cycle includes the (1,0) east link."""
        report = analyze(Fig5Design("a"), name="fig5a")
        findings = report.by_code("BHV201")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.severity == "error"
        cycle = [(tuple(coord), port)
                 for coord, port in finding.data["cycle"]]
        assert ((1, 0), Port.EAST.value) in cycle
        # The message spells out the full edge path, closed on itself.
        assert "resource cycle [" in finding.message
        assert finding.message.count("->") >= len(cycle)
        assert finding.data["chains"]  # the chains holding the links

    def test_fig5b_clean(self):
        report = analyze(Fig5Design("b"), name="fig5b")
        assert report.by_code("BHV201") == []
        assert report.ok

    def test_functional_api_matches_pass(self):
        design = Fig5Design("a")
        cycle = analyze_chains(design.chains, design.tile_coords)
        assert ((1, 0), Port.EAST) in cycle

    def test_derived_chains_catch_undeclared_routing(self):
        """A deadlocky placement is flagged even when the design
        *declares* nothing — the pass derives chains from the real
        next-hop state (here every hop is a tile-to-tile route, so the
        whole Fig 5a path is statically visible)."""
        from types import SimpleNamespace

        from repro.deadlock.demo import CutThroughTile
        from repro.noc.mesh import Mesh
        from repro.sim.kernel import CycleSimulator

        sim = CycleSimulator()
        mesh = Mesh(4, 1)
        coords = {"eth": (0, 0), "ip": (2, 0), "udp": (1, 0),
                  "app": (3, 0)}
        order = ["eth", "ip", "udp", "app"]
        tiles = {}
        for name, nxt in zip(order, order[1:] + [None]):
            tiles[name] = CutThroughTile(
                name, mesh, coords[name],
                coords[nxt] if nxt else None)
        mesh.register(sim)
        sim.add_all(tiles.values())
        design = SimpleNamespace(sim=sim, mesh=mesh, tiles=tiles,
                                 chains=[], tile_coords=coords)
        report = analyze(design, name="fig5a-undeclared")
        assert report.by_code("BHV201"), \
            "derived chains alone must expose the Fig 5a cycle"


class TestWakeContractPass:
    def test_broken_wake_design_flagged(self):
        report = analyze(build_broken_wake_design(), name="broken_wake")
        findings = report.by_code("BHV301")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert findings[0].location == "echo"
        assert "wake_sources" in findings[0].hint

    def test_divergence_scheduled_stalls_naive_passes(self):
        """The lint finding corresponds to a real behavioural bug: the
        design works under the naive kernel and stalls forever under
        the scheduled one."""
        naive = build_broken_wake_design("naive")
        naive.send()
        naive.sim.run(200)
        assert naive.echo.echoed == 1

        sched = build_broken_wake_design("scheduled")
        sched.send()
        sched.sim.run(200)
        assert sched.echo.echoed == 0  # lost wakeup: message stranded
        assert len(sched.echo.port.eject_fifo) > 0

    def test_fixed_design_passes_and_runs(self):
        """Restoring the wake hook clears the finding and the stall."""
        design = build_broken_wake_design("scheduled")
        design.echo.wake_sources = \
            lambda: (design.echo.port.eject_fifo,)
        # Re-wire as the kernel would have at add() time: the kernel
        # filled _kernel_wake; attach it to the now-declared source.
        design.echo.port.eject_fifo.add_waker(design.echo._kernel_wake)
        report = analyze(design, name="fixed_wake")
        assert report.by_code("BHV301") == []
        design.send()
        design.sim.run(200)
        assert design.echo.echoed == 1


class TestShippedDesignsLintClean:
    @pytest.mark.parametrize("name", sorted(_shipped_designs()))
    def test_no_errors(self, name):
        factory = _shipped_designs()[name]
        report = analyze(factory(), name=name)
        assert report.ok, report.render()


class TestLintCli:
    def test_clean_design_exits_zero(self, capsys):
        assert lint_main(["udp_echo"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_fig5a_exits_nonzero(self, capsys):
        assert lint_main(["fig5a"]) == 1
        out = capsys.readouterr().out
        assert "BHV201" in out
        assert "(1, 0):east" in out

    def test_broken_wake_exits_nonzero(self, capsys):
        assert lint_main(["broken_wake"]) == 1
        assert "BHV301" in capsys.readouterr().out

    def test_unknown_target_exits_two(self, capsys):
        assert lint_main(["no_such_design"]) == 2

    def test_json_output_is_machine_readable(self, capsys):
        assert lint_main(["fig5a", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        codes = {f["code"] for f in payload["findings"]}
        assert "BHV201" in codes

    def test_list_codes(self, capsys):
        assert lint_main(["--list-codes"]) == 0
        out = capsys.readouterr().out
        for code in CODES:
            assert code in out

    def test_pass_selection(self, capsys):
        # Only the wake pass: fig5a's deadlock is not reported.
        assert lint_main(["fig5a", "--pass", "wake-contract"]) == 0
        assert "BHV201" not in capsys.readouterr().out

    def test_xml_target(self, tmp_path, capsys):
        from repro.config.examples import UDP_ECHO_XML
        path = tmp_path / "udp_echo.xml"
        path.write_text(UDP_ECHO_XML)
        assert lint_main([str(path)]) == 0

    def test_xml_spec_errors_exit_nonzero(self, tmp_path, capsys):
        xml = (
            '<design name="dup" width="2" height="1">'
            "<tile><name>a</name><type>ip_rx</type><x>0</x><y>0</y></tile>"
            "<tile><name>a</name><type>ip_tx</type><x>1</x><y>0</y></tile>"
            "</design>"
        )
        path = tmp_path / "dup.xml"
        path.write_text(xml)
        assert lint_main([str(path)]) == 1
        assert "BHV105" in capsys.readouterr().out

    def test_deadlocky_xml_reported_as_finding(self, tmp_path, capsys):
        """A spec whose placement deadlocks is rejected during build;
        the CLI folds that into a BHV201 finding instead of crashing."""
        from repro.config import design_from_xml, design_to_xml
        from repro.config.examples import UDP_ECHO_XML
        spec = design_from_xml(UDP_ECHO_XML)
        spec.tile("ip_rx").x, spec.tile("udp_rx").x = 2, 1
        path = tmp_path / "fig5a.xml"
        path.write_text(design_to_xml(spec))
        assert lint_main([str(path)]) == 1
        assert "BHV201" in capsys.readouterr().out
