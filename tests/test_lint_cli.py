"""Tests for ``python -m repro.tools.lint`` (in-process).

Pins the exit-code contract (0 clean / 1 findings / 2 unusable
target), ``--pass`` filtering across both pass families, the
``--sanitize`` plumbing (``--cycles``, ``--combos``), and the JSON
round-trip the CI jobs consume.
"""

import json

import pytest

from repro.tools.lint import main


class TestExitCodes:
    def test_clean_design_exits_zero(self, capsys):
        assert main(["udp_echo"]) == 0
        assert "OK: 0 error(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main(["fig5a"]) == 1
        assert "BHV201" in capsys.readouterr().out

    def test_unknown_design_exits_two(self, capsys):
        assert main(["no_such_design"]) == 2
        assert "unknown design" in capsys.readouterr().err

    def test_unreadable_xml_exits_two(self, capsys):
        assert main(["/nonexistent/design.xml"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_all_lints_every_shipped_design(self, capsys):
        assert main(["--all"]) == 0
        out = capsys.readouterr().out
        assert "udp_echo" in out and "tcp_server" in out

    def test_strict_promotes_warnings(self):
        # blind_forwarder seeds a warning-severity BHV504: clean by
        # default, a failure under --strict.
        assert main(["blind_forwarder"]) == 0
        assert main(["blind_forwarder", "--strict"]) == 1


class TestPassFiltering:
    def test_single_static_pass(self, capsys):
        # fig5a's bug is a deadlock cycle: the structural pass alone
        # must not see it (and must be the only pass that ran).
        assert main(["fig5a", "--pass", "structural", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passes"] == ["structural"]
        assert payload["findings"] == []

    def test_unknown_pass_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["udp_echo", "--pass", "bogus"])
        assert excinfo.value.code == 2
        assert "unknown pass" in capsys.readouterr().err

    def test_sanitize_pass_requires_sanitize_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["udp_echo", "--pass", "idle-truth"])
        assert excinfo.value.code == 2
        assert "--sanitize" in capsys.readouterr().err

    def test_sanitize_pass_with_flag(self, capsys):
        assert main(["idle_liar", "--sanitize", "--pass", "idle-truth",
                     "--cycles", "300"]) == 1
        out = capsys.readouterr().out
        assert "BHV401" in out

    def test_mixed_families_one_invocation(self, capsys):
        assert main(["broken_wake", "--sanitize",
                     "--pass", "wake-contract",
                     "--pass", "lost-wake", "--cycles", "300"]) == 1
        out = capsys.readouterr().out
        assert "BHV301" in out and "BHV402" in out


class TestSanitize:
    def test_broken_wake_caught_dynamically(self, capsys):
        assert main(["broken_wake", "--sanitize",
                     "--cycles", "400"]) == 1
        out = capsys.readouterr().out
        assert "BHV401" in out and "BHV402" in out

    def test_clean_design_stays_clean(self):
        assert main(["udp_echo", "--sanitize", "--cycles", "400",
                     "--combos", "scheduled/flat/flat"]) == 0

    def test_without_flag_no_simulation_runs(self, capsys):
        # idle_liar's bug is dynamic-only: without --sanitize the
        # linter must not see it (and must not silently simulate).
        assert main(["idle_liar"]) == 0
        assert "BHV401" not in capsys.readouterr().out

    def test_bad_combo_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["udp_echo", "--sanitize", "--combos", "scheduled"])
        assert excinfo.value.code == 2
        assert "bad combo" in capsys.readouterr().err

    def test_bad_cycles_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["udp_echo", "--sanitize", "--cycles", "0"])
        assert excinfo.value.code == 2
        assert "--cycles" in capsys.readouterr().err

    def test_explicit_combo_respected(self, capsys):
        # step_parity only diverges against a naive-kernel run.  Two
        # scheduled combos agree with each other; a single combo is
        # paired with the naive reference and exposes the bug.
        assert main(["step_parity", "--sanitize", "--cycles", "400",
                     "--combos", "scheduled/object/object",
                     "--combos", "scheduled/flat/flat"]) == 0
        capsys.readouterr()
        assert main(["step_parity", "--sanitize", "--cycles", "400",
                     "--combos", "scheduled/object/object"]) == 1
        assert "BHV404" in capsys.readouterr().out


class TestJson:
    def test_round_trip_single_target(self, capsys):
        assert main(["broken_wake", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["target"] == "broken_wake"
        assert any(f["code"] == "BHV301"
                   for f in payload["findings"])

    def test_round_trip_with_sanitize(self, capsys):
        assert main(["idle_liar", "--sanitize", "--cycles", "300",
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        codes = {f["code"] for f in payload["findings"]}
        assert codes == {"BHV401"}
        assert any(p.startswith("sanitize:")
                   for p in payload["passes"])

    def test_multiple_targets_yield_list(self, capsys):
        assert main(["udp_echo", "nat_echo", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 2


class TestListing:
    def test_list_names_both_groups(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "udp_echo" in out and "idle_liar" in out
        assert "phantom_dest" in out

    def test_list_codes_includes_new_families(self, capsys):
        assert main(["--list-codes"]) == 0
        out = capsys.readouterr().out
        for code in ("BHV401", "BHV402", "BHV403", "BHV404",
                     "BHV501", "BHV502", "BHV503", "BHV504"):
            assert code in out
