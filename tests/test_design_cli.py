"""Tests for the design-file command-line tool."""

import pytest

from repro.config.examples import RS_DESIGN_XML, UDP_ECHO_XML
from repro.tools.design import main


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "design.xml"
    path.write_text(UDP_ECHO_XML)
    return str(path)


@pytest.fixture
def bad_design_file(tmp_path):
    # Fig 5a placement: swap ip_rx / udp_rx coordinates.
    text = UDP_ECHO_XML.replace(
        "<name>ip_rx</name>\n    <type>ip_rx</type>\n    <x>1</x>",
        "<name>ip_rx</name>\n    <type>ip_rx</type>\n    <x>2</x>",
    ).replace(
        "<name>udp_rx</name>\n    <type>udp_rx</type>\n    <x>2</x>",
        "<name>udp_rx</name>\n    <type>udp_rx</type>\n    <x>1</x>",
    )
    path = tmp_path / "bad.xml"
    path.write_text(text)
    return str(path)


class TestCli:
    def test_validate_ok(self, design_file, capsys):
        assert main(["validate", design_file]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "(3, 1)" in out  # the auto-generated empty tile

    def test_validate_broken(self, tmp_path, capsys):
        path = tmp_path / "broken.xml"
        path.write_text(UDP_ECHO_XML.replace("<x>3</x>", "<x>9</x>"))
        assert main(["validate", str(path)]) == 1
        assert "error:" in capsys.readouterr().out

    def test_analyze_clean(self, design_file, capsys):
        assert main(["analyze", design_file]) == 0
        assert "deadlock-free" in capsys.readouterr().out

    def test_analyze_deadlock(self, bad_design_file, capsys):
        assert main(["analyze", bad_design_file]) == 2
        assert "DEADLOCK" in capsys.readouterr().out

    def test_generate(self, design_file, capsys):
        assert main(["generate", design_file]) == 0
        out = capsys.readouterr().out
        assert "wire [511:0]" in out
        assert "eth_rx_inst" in out

    def test_loc(self, design_file, capsys):
        assert main(["loc", design_file, "app"]) == 0
        out = capsys.readouterr().out
        assert "XML declaration" in out

    def test_resources(self, tmp_path, capsys):
        path = tmp_path / "rs.xml"
        path.write_text(RS_DESIGN_XML)
        assert main(["resources", str(path)]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        assert "rs0" in out
