"""Tests for buffer tiles, logging tiles, and the distribution tiles."""

from repro.noc import Mesh, NocMessage
from repro.packet import build_ipv4_udp_frame, IPv4Address, MacAddress
from repro.sim.kernel import CycleSimulator
from repro.tiles.base import PacketMeta, Tile
from repro.tiles.buffer import (
    BufferReadReq,
    BufferReadResp,
    BufferTile,
    BufferWriteAck,
    BufferWriteReq,
)
from repro.tiles.loadbalancer import FlowHashLoadBalancerTile
from repro.tiles.logger import LogEntry, LogReadReq, LogReadResp, PacketLogTile
from repro.tiles.scheduler import RoundRobinSchedulerTile
from repro.packet.tcp import TcpHeader


class Collector(Tile):
    def __init__(self, name, mesh, coord, **kwargs):
        kwargs.setdefault("occupancy", 1)
        kwargs.setdefault("parse_latency", 1)
        super().__init__(name, mesh, coord, **kwargs)
        self.received = []

    def handle_message(self, message, cycle):
        self.received.append(message)
        return []


def buffer_fixture():
    sim = CycleSimulator()
    mesh = Mesh(3, 1)
    requester_port = mesh.attach((0, 0))
    buffer_tile = BufferTile("buf", mesh, (1, 0), size_bytes=1024)
    collector = Collector("collector", mesh, (2, 0))
    mesh.register(sim)
    sim.add_all([buffer_tile, collector])
    return sim, requester_port, buffer_tile, collector


class TestBufferTile:
    def test_write_then_read(self):
        sim, port, buffer_tile, collector = buffer_fixture()
        port.send(NocMessage(
            dst=(1, 0), src=(0, 0),
            metadata=BufferWriteReq(addr=100), data=b"stored bytes",
        ))
        port.send(NocMessage(
            dst=(1, 0), src=(0, 0),
            metadata=BufferReadReq(addr=100, length=12, reply_to=(2, 0),
                                   tag="t1"),
        ))
        sim.run_until(lambda: collector.received, max_cycles=500)
        response = collector.received[0]
        assert isinstance(response.metadata, BufferReadResp)
        assert response.metadata.tag == "t1"
        assert response.data == b"stored bytes"

    def test_write_ack(self):
        sim, port, buffer_tile, collector = buffer_fixture()
        port.send(NocMessage(
            dst=(1, 0), src=(0, 0),
            metadata=BufferWriteReq(addr=0, reply_to=(2, 0), tag=9),
            data=b"abc",
        ))
        sim.run_until(lambda: collector.received, max_cycles=500)
        ack = collector.received[0].metadata
        assert isinstance(ack, BufferWriteAck)
        assert ack.length == 3 and ack.tag == 9

    def test_out_of_range_dropped(self):
        sim, port, buffer_tile, collector = buffer_fixture()
        port.send(NocMessage(
            dst=(1, 0), src=(0, 0),
            metadata=BufferReadReq(addr=1020, length=100,
                                   reply_to=(2, 0)),
        ))
        sim.run(300)
        assert not collector.received
        assert buffer_tile.drops == 1

    def test_shared_between_tiles(self):
        """Multiple tiles can share state through one buffer tile."""
        sim = CycleSimulator()
        mesh = Mesh(3, 1)
        writer = mesh.attach((0, 0))
        buffer_tile = BufferTile("buf", mesh, (1, 0))
        reader = Collector("reader", mesh, (2, 0))
        mesh.register(sim)
        sim.add_all([buffer_tile, reader])
        writer.send(NocMessage(dst=(1, 0), src=(0, 0),
                               metadata=BufferWriteReq(addr=0),
                               data=b"shared"))
        sim.run(50)
        # A different tile (the reader itself) requests the data.
        reader.send(NocMessage(dst=(1, 0), src=(2, 0),
                               metadata=BufferReadReq(addr=0, length=6,
                                                      reply_to=(2, 0))))
        sim.run_until(lambda: reader.received, max_cycles=500)
        assert reader.received[0].data == b"shared"


class TestLogEntry:
    def test_pack_unpack(self):
        entry = LogEntry(cycle=123456, direction="rx",
                         summary="tcp 80->5000", seq=111, ack=222,
                         flags="SYN|ACK", length=1460)
        out = LogEntry.unpack(entry.pack())
        assert out == entry

    def test_pack_truncates_long_summary(self):
        entry = LogEntry(cycle=1, direction="tx", summary="x" * 200)
        assert len(entry.pack()) <= 18 + LogEntry.MAX_WIRE_LEN


def logger_fixture(**log_kwargs):
    sim = CycleSimulator()
    mesh = Mesh(3, 1)
    src = mesh.attach((0, 0))
    log_tile = PacketLogTile("log", mesh, (1, 0), **log_kwargs)
    collector = Collector("collector", mesh, (2, 0))
    log_tile.next_hop.set_entry(PacketLogTile.FORWARD, (2, 0))
    mesh.register(sim)
    sim.add_all([log_tile, collector])
    return sim, src, log_tile, collector


class TestPacketLogTile:
    def make_meta(self, seq=100):
        return PacketMeta(tcp=TcpHeader(src_port=80, dst_port=5000,
                                        seq=seq, ack=7))

    def test_forwards_and_records(self):
        sim, src, log_tile, collector = logger_fixture()
        for seq in (1, 2, 3):
            src.send(NocMessage(dst=(1, 0), src=(0, 0),
                                metadata=self.make_meta(seq),
                                data=bytes(10)))
        sim.run_until(lambda: len(collector.received) == 3,
                      max_cycles=500)
        assert [e.seq for e in log_tile.entries] == [1, 2, 3]
        assert all(e.direction == "rx" for e in log_tile.entries)
        # Cycle timestamps are monotonically increasing.
        cycles = [e.cycle for e in log_tile.entries]
        assert cycles == sorted(cycles)

    def test_readback_over_noc(self):
        sim, src, log_tile, collector = logger_fixture()
        src.send(NocMessage(dst=(1, 0), src=(0, 0),
                            metadata=self.make_meta(42), data=b""))
        sim.run(60)
        src.send(NocMessage(dst=(1, 0), src=(0, 0),
                            metadata=LogReadReq(index=0,
                                                reply_to=(2, 0))))
        sim.run_until(
            lambda: any(isinstance(m.metadata, LogReadResp)
                        for m in collector.received),
            max_cycles=500,
        )
        resp = [m for m in collector.received
                if isinstance(m.metadata, LogReadResp)][0]
        assert resp.metadata.entry.seq == 42
        assert LogEntry.unpack(resp.data).seq == 42

    def test_read_past_end_returns_empty(self):
        sim, src, log_tile, collector = logger_fixture()
        src.send(NocMessage(dst=(1, 0), src=(0, 0),
                            metadata=LogReadReq(index=5,
                                                reply_to=(2, 0))))
        sim.run_until(lambda: collector.received, max_cycles=500)
        resp = collector.received[0].metadata
        assert resp.entry is None and resp.total == 0

    def test_capacity_is_a_ring(self):
        sim, src, log_tile, collector = logger_fixture(capacity=2)
        for seq in range(4):
            src.send(NocMessage(dst=(1, 0), src=(0, 0),
                                metadata=self.make_meta(seq), data=b""))
        sim.run_until(lambda: len(collector.received) == 4,
                      max_cycles=800)
        assert [e.seq for e in log_tile.entries] == [2, 3]

    def test_full_request_buffer_drops(self):
        sim, src, log_tile, collector = logger_fixture(request_buffer=0)
        src.send(NocMessage(dst=(1, 0), src=(0, 0),
                            metadata=LogReadReq(index=0,
                                                reply_to=(2, 0))))
        sim.run(300)
        assert not collector.received
        assert log_tile.dropped_requests == 1


MAC = MacAddress("02:00:00:00:00:01")


class TestDistributionTiles:
    def test_round_robin_scheduler(self):
        sim = CycleSimulator()
        mesh = Mesh(4, 1)
        src = mesh.attach((0, 0))
        scheduler = RoundRobinSchedulerTile("sched", mesh, (1, 0))
        replica_a = Collector("a", mesh, (2, 0))
        replica_b = Collector("b", mesh, (3, 0))
        scheduler.add_replica(replica_a.coord)
        scheduler.add_replica(replica_b.coord)
        mesh.register(sim)
        sim.add_all([scheduler, replica_a, replica_b])
        for i in range(10):
            src.send(NocMessage(dst=(1, 0), src=(0, 0), metadata=i,
                                data=b""))
        sim.run_until(
            lambda: len(replica_a.received) + len(replica_b.received)
            == 10,
            max_cycles=1000,
        )
        assert len(replica_a.received) == 5
        assert len(replica_b.received) == 5

    def test_flow_lb_sticky_and_spread(self):
        sim = CycleSimulator()
        mesh = Mesh(3, 2)
        lb = FlowHashLoadBalancerTile("lb", mesh, (0, 0))
        stack_a = Collector("sa", mesh, (1, 0))
        stack_b = Collector("sb", mesh, (2, 0))
        lb.add_stack(stack_a.coord)
        lb.add_stack(stack_b.coord)
        mesh.register(sim)
        sim.add_all([lb, stack_a, stack_b])
        ip_a = IPv4Address("10.0.0.1")
        ip_b = IPv4Address("10.0.0.10")
        frames = [
            build_ipv4_udp_frame(MAC, MAC, ip_a, ip_b, port, 7, b"x")
            for port in range(20)
        ]
        for frame in frames + frames:  # same flows twice
            lb.push_frame(frame, 0)
        sim.run_until(
            lambda: len(stack_a.received) + len(stack_b.received) == 40,
            max_cycles=2000,
        )
        # Both stacks got traffic, and each flow went to one stack only.
        assert stack_a.received and stack_b.received
        counts = {}
        for tile in (stack_a, stack_b):
            for message in tile.received:
                key = bytes(message.data)
                counts.setdefault(key, set()).add(tile.name)
        assert all(len(stacks) == 1 for stacks in counts.values())

    def test_lb_throughput_is_paper_limit(self):
        """4 cycles per 64 B packet -> 32 Gbps (section VII-I)."""
        sim = CycleSimulator()
        mesh = Mesh(2, 1)
        lb = FlowHashLoadBalancerTile("lb", mesh, (0, 0))
        sink = Collector("sink", mesh, (1, 0))
        lb.add_stack(sink.coord)
        mesh.register(sim)
        sim.add_all([lb, sink])
        frame = build_ipv4_udp_frame(MAC, MAC, IPv4Address("10.0.0.1"),
                                     IPv4Address("10.0.0.2"), 1, 7,
                                     bytes(64))
        n = 100
        for _ in range(n):
            lb.push_frame(frame, 0)
        cycles = sim.run_until(
            lambda: len(sink.received) == n, max_cycles=5000
        )
        per_packet = cycles / n
        assert 4.0 <= per_packet <= 5.0
