"""Tests for router-internal fault modes (misroute, stuck grant).

These faults live *inside* the mesh routers, below the link-level
stall/corrupt faults the suite already covers: a misroute window
deflects every routing decision one legal hop sideways, a stuck-grant
window wedges one output arbiter.  Both are seed-deterministic windows
from the :class:`repro.faults.FaultPlan` builder and must behave
bit-identically on the object-graph and flat mesh backends — the whole
point of modelling them at the routing-function level.
"""

import json

import pytest

from repro.designs import FrameSink, UdpEchoDesign
from repro.faults import FaultPlan
from repro.noc.router import misroute_index
from repro.noc.routing import Port
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
)

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def echo_design(plan, **kwargs):
    design = UdpEchoDesign(udp_port=7, fault_plan=plan, **kwargs)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)
    return design, sink


def inject_echoes(design, count=20, gap=40, start=1):
    for i in range(count):
        frame = build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, CLIENT_IP, design.server_ip,
            5555, 7, b"payload-%02d" % i)
        design.inject(frame, start + i * gap)


def run_echo(plan, count=20, **kwargs):
    design, sink = echo_design(plan, **kwargs)
    inject_echoes(design, count=count)
    design.sim.run_until(lambda: sink.count >= count,
                         max_cycles=60_000)
    return design, sink


class TestPlanValidation:
    def test_router_events_make_a_plan_non_null(self):
        assert not FaultPlan().misroute((1, 0), at=10,
                                        duration=50).is_null
        assert not FaultPlan().stuck_grant((1, 0), "east", at=10,
                                           duration=50).is_null

    def test_describe_lists_router_events(self):
        plan = (FaultPlan().misroute((1, 0), at=10, duration=50)
                .stuck_grant((2, 0), "east", at=99, duration=40))
        text = plan.describe()
        assert "misroute" in text and "stuck" in text

    def test_unknown_port_rejected(self):
        with pytest.raises(ValueError, match="router port"):
            FaultPlan().stuck_grant((1, 0), "upward", at=1, duration=1)

    def test_port_enum_accepted(self):
        plan = FaultPlan().stuck_grant((1, 0), Port.EAST, at=1,
                                       duration=1)
        assert plan.router_events[0][2] == \
            FaultPlan().stuck_grant((1, 0), "east", at=1,
                                    duration=1).router_events[0][2]

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            FaultPlan().misroute((1, 0), at=10, duration=0)

    def test_unknown_router_rejected_at_attach(self):
        with pytest.raises(KeyError):
            echo_design(FaultPlan().misroute((9, 9), at=1, duration=1))


class TestMisrouteIndex:
    def test_ejection_never_deflected(self):
        assert misroute_index(0, 0b11110) == 0

    def test_deflects_x_phase_sideways_only(self):
        # All four directions connected: east (1) deflects south (4),
        # never 180 degrees back west (a head-on wormhole deadlock).
        assert misroute_index(1, 0b11110) == 4
        assert misroute_index(2, 0b11110) == 3  # west -> north
        # Preferred Y port missing: east falls back to north.
        assert misroute_index(1, 0b01110) == 3

    def test_y_phase_never_deflected(self):
        # Deflecting the Y phase would bounce straight back through
        # the faulted router (see _DEFLECTIONS in repro.noc.router).
        assert misroute_index(3, 0b11110) == 3
        assert misroute_index(4, 0b11110) == 4

    def test_no_perpendicular_keeps_the_route(self):
        # Only east+west connected: an east route stays east.
        assert misroute_index(1, 0b00110) == 1


class TestMisrouteWindow:
    def test_traffic_detours_but_delivers(self):
        clean_design, clean_sink = run_echo(None)
        plan = FaultPlan().misroute((1, 0), at=100, duration=400)
        design, sink = run_echo(plan)
        assert sink.count == clean_sink.count == 20
        # The window really deflected traffic: emit timing shifted...
        clean_cycles = [c for _, c in clean_sink.frames]
        assert [c for _, c in sink.frames] != clean_cycles
        # ...and both edges of the window were recorded.
        counters = design.fault_engine.counters
        assert counters["noc.misroute_on"] == 1
        assert counters["noc.misroute_off"] == 1

    def test_routing_is_clean_after_the_window(self):
        plan = FaultPlan().misroute((1, 0), at=100, duration=200)
        design, sink = run_echo(plan)
        clean_design, clean_sink = run_echo(None)
        # Frames injected long after the window are delivered with the
        # same per-frame latency as a fault-free run.
        faulted = sorted(c for _, c in sink.frames)[-5:]
        clean = sorted(c for _, c in clean_sink.frames)[-5:]
        assert faulted == clean


class TestStuckGrantWindow:
    def test_output_wedges_then_recovers(self):
        clean_design, clean_sink = run_echo(None)
        plan = FaultPlan().stuck_grant((1, 0), "east", at=100,
                                       duration=1500)
        design, sink = run_echo(plan)
        assert sink.count == 20  # everything still delivered
        counters = design.fault_engine.counters
        assert counters["noc.stuck_grant"] == 1
        assert counters["noc.grant_release"] == 1
        # The wedged window held the wormhole: the backlog drains
        # late, so some frame egresses later than any clean-run frame.
        assert max(c for _, c in sink.frames) > \
            max(c for _, c in clean_sink.frames)

    def test_unrelated_output_is_unaffected(self):
        """Wedging an output the echo path never crosses changes
        nothing downstream."""
        clean_design, clean_sink = run_echo(None)
        plan = FaultPlan().stuck_grant((1, 0), "west", at=100,
                                       duration=1500)
        design, sink = run_echo(plan)
        assert [c for _, c in sink.frames] == \
            [c for _, c in clean_sink.frames]


class TestBackendBitIdentity:
    """The acceptance property: router faults are modelled at the
    routing-function level, so the object-graph mesh and the flat
    array mesh replay them bit-identically."""

    PLANS = {
        "misroute": lambda: FaultPlan().misroute((1, 0), at=100,
                                                 duration=400),
        "stuck_grant": lambda: FaultPlan().stuck_grant(
            (1, 0), "east", at=100, duration=1500),
        "combined": lambda: (FaultPlan()
                             .misroute((2, 0), at=50, duration=300)
                             .stuck_grant((1, 0), "east", at=500,
                                          duration=800)),
    }

    def signature(self, plan, mesh_backend):
        design, sink = run_echo(plan, mesh_backend=mesh_backend)
        return {
            "frames": [(frame.hex(), cycle)
                       for frame, cycle in sink.frames],
            "counters": dict(design.fault_engine.counters),
        }

    @pytest.mark.parametrize("name", sorted(PLANS))
    def test_object_and_flat_mesh_agree(self, name):
        make_plan = self.PLANS[name]
        flat = self.signature(make_plan(), "flat")
        obj = self.signature(make_plan(), "object")
        assert json.dumps(flat, sort_keys=True) == \
            json.dumps(obj, sort_keys=True)

    def test_window_replay_is_deterministic(self):
        make_plan = self.PLANS["combined"]
        first = self.signature(make_plan(), "flat")
        second = self.signature(make_plan(), "flat")
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)
