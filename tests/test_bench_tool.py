"""Tests for the perf-lab runner and its regression gate."""

import json

import pytest

from repro.tools.bench import (
    SCHEMA,
    compare_documents,
    flatten_metrics,
    load_bench_document,
    main,
    metric_direction,
    run_benchmark,
    validate_bench_document,
)


def make_document(goodput=113.2, wall=1.5, p99=120.0):
    return {
        "schema": SCHEMA,
        "results": {
            "mesh_backend": {
                "wall_s": wall,
                "metrics": {
                    "flat.goodput_gbps": goodput,
                    "latency.p99": p99,
                    "config.fifo_depth": 8.0,
                },
            },
        },
    }


class TestFlatten:
    def test_nested_numeric_leaves(self):
        data = {"a": {"b": 1, "c": 2.5}, "d": [3, {"e": 4}],
                "skip": "text", "flag": True}
        flat = flatten_metrics(data)
        assert flat == {"a.b": 1.0, "a.c": 2.5, "d.0": 3.0,
                        "d.1.e": 4.0}

    def test_lists_of_dicts_become_indexed_metrics(self):
        """A per-load-point curve survives flattening as one metric
        per point instead of being dropped."""
        assert flatten_metrics([{"a": 1}, {"a": 2}]) == \
            {"0.a": 1.0, "1.a": 2.0}
        curve = {"curve": [{"offered_gbps": 20.0, "p99": 145},
                           {"offered_gbps": 60.0, "p99": 955}],
                 "knee_gbps": 20.0}
        assert flatten_metrics(curve) == {
            "curve.0.offered_gbps": 20.0, "curve.0.p99": 145.0,
            "curve.1.offered_gbps": 60.0, "curve.1.p99": 955.0,
            "knee_gbps": 20.0,
        }

    def test_indexed_metrics_round_trip_through_a_document(self):
        """Flattened curve metrics survive serialisation, schema
        validation, and self-comparison without loss."""
        import json

        from repro.tools.bench import compare_documents
        doc = {"schema": "repro.bench/1", "results": {"sweep": {
            "wall_s": 0.0,
            "metrics": flatten_metrics(
                {"curve": [{"goodput_gbps": 14.75},
                           {"goodput_gbps": 39.57}]}),
        }}}
        reloaded = validate_bench_document(json.loads(json.dumps(doc)))
        metrics = reloaded["results"]["sweep"]["metrics"]
        assert metrics["curve.0.goodput_gbps"] == 14.75
        assert metrics["curve.1.goodput_gbps"] == 39.57
        outcome = compare_documents(reloaded, doc)
        assert not outcome["regressions"]
        assert outcome["unchanged"] == 2  # both points gated

    def test_direction_heuristics(self):
        assert metric_direction("flat.goodput_gbps") == 1
        assert metric_direction("speedup") == 1
        assert metric_direction("latency.p99") == -1
        assert metric_direction("wall_s") == -1
        # Lower-better wins mixed names: a goodput *timing* is a timing.
        assert metric_direction("goodput_wall_s") == -1
        assert metric_direction("fifo_depth") == 0


class TestSchema:
    def test_valid_document(self):
        assert validate_bench_document(make_document())

    def test_rejections(self):
        with pytest.raises(ValueError, match="schema"):
            validate_bench_document({"schema": "nope", "results": {}})
        with pytest.raises(ValueError, match="results"):
            validate_bench_document({"schema": SCHEMA})
        bad = make_document()
        bad["results"]["mesh_backend"]["wall_s"] = "fast"
        with pytest.raises(ValueError, match="wall_s"):
            validate_bench_document(bad)
        bad = make_document()
        bad["results"]["mesh_backend"]["metrics"]["x"] = "slow"
        with pytest.raises(ValueError, match="must be a number"):
            validate_bench_document(bad)


class TestCompare:
    def test_self_compare_passes(self):
        doc = make_document()
        outcome = compare_documents(doc, doc)
        assert outcome["regressions"] == []
        assert outcome["improvements"] == []
        assert outcome["unchanged"] == 2  # goodput + p99; depth ungated

    def test_injected_regression_is_flagged(self):
        baseline = make_document(goodput=113.2)
        current = make_document(goodput=90.0)  # -20% goodput
        outcome = compare_documents(current, baseline)
        assert len(outcome["regressions"]) == 1
        bench, metric, base, cur, change = outcome["regressions"][0]
        assert metric == "flat.goodput_gbps"
        assert change < -0.05

    def test_latency_growth_is_a_regression(self):
        outcome = compare_documents(make_document(p99=200.0),
                                    make_document(p99=120.0))
        assert [r[1] for r in outcome["regressions"]] == ["latency.p99"]

    def test_improvement_not_flagged(self):
        outcome = compare_documents(make_document(goodput=150.0),
                                    make_document(goodput=113.2))
        assert outcome["regressions"] == []
        assert len(outcome["improvements"]) == 1

    def test_threshold_respected(self):
        baseline = make_document(goodput=100.0)
        current = make_document(goodput=97.0)  # -3%
        assert compare_documents(current, baseline,
                                 threshold=0.05)["regressions"] == []
        assert compare_documents(current, baseline,
                                 threshold=0.01)["regressions"]


class TestCli:
    def test_check_and_compare_exit_codes(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(make_document(goodput=113.2)))
        cur.write_text(json.dumps(make_document(goodput=90.0)))

        assert main(["--check", str(base)]) == 0
        assert main(["--input", str(base),
                     "--compare", str(base)]) == 0  # self-compare
        assert main(["--input", str(cur),
                     "--compare", str(base)]) == 1  # regression
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out
        assert "flat.goodput_gbps" in out

    def test_bad_document_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert main(["--check", str(bad)]) == 2
        assert main(["--input", str(bad)]) == 2

    def test_runs_a_bench_module(self, tmp_path, capsys):
        bench = tmp_path / "bench_tiny.py"
        bench.write_text(
            "def run_tiny():\n"
            "    return {'goodput_gbps': 42.0, 'frames': 10}\n")
        out_path = tmp_path / "out.json"
        assert main([str(bench), "--out", str(out_path)]) == 0
        document = load_bench_document(str(out_path))
        metrics = document["results"]["tiny"]["metrics"]
        assert metrics == {"goodput_gbps": 42.0, "frames": 10.0}

    def test_entry_point_prefers_module_suffix(self, tmp_path):
        bench = tmp_path / "bench_multi_scalability.py"
        bench.write_text(
            "def run_helper_sweep():\n    return {'x': 1}\n"
            "def run_scalability():\n    return {'x': 2}\n")
        result = run_benchmark(str(bench))
        assert result["metrics"] == {"x": 2.0}

    def test_metricless_module_is_a_clear_error(self, tmp_path, capsys):
        # A bench whose entry point returns nothing numeric must fail
        # loudly, not produce an empty-but-valid document.
        bench = tmp_path / "bench_silent.py"
        bench.write_text("def run_silent():\n    return None\n")
        with pytest.raises(ValueError, match="no usable metrics"):
            run_benchmark(str(bench))
        assert main([str(bench)]) == 2
        err = capsys.readouterr().err
        assert "no usable metrics" in err
        assert "run_silent" in err

    def test_non_numeric_result_is_a_clear_error(self, tmp_path):
        bench = tmp_path / "bench_texty.py"
        bench.write_text(
            "def run_texty():\n    return {'note': 'fast!'}\n")
        with pytest.raises(ValueError, match="no usable metrics"):
            run_benchmark(str(bench))

    def test_list_discovers_modules(self, tmp_path, capsys):
        (tmp_path / "bench_alpha.py").write_text(
            '"""Alpha bench.\n\ndetails\n"""\n'
            "def run_alpha():\n    return {'x': 1}\n")
        (tmp_path / "bench_beta.py").write_text(
            "def helper():\n    pass\n")
        (tmp_path / "not_a_bench.py").write_text("x = 1\n")
        assert main(["--list", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "bench_alpha.py: run_alpha -- Alpha bench." in out
        assert "bench_beta.py: NO run_* entry point" in out
        assert "not_a_bench" not in out

    def test_list_empty_or_missing_dir_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["--list", str(empty)]) == 2
        assert main(["--list", str(tmp_path / "missing")]) == 2
