"""Tests for the NAT and IP-in-IP network-function tiles (section V-E)."""

from repro.designs import FrameSink, IpInIpEchoDesign, NatEchoDesign
from repro.packet import IPv4Address, MacAddress, parse_frame
from repro.packet.builder import build_ipinip_udp_frame, build_ipv4_udp_frame
from repro.tiles.nat import NatTable

CLIENT_MAC = MacAddress("02:00:00:00:00:01")
CLIENT_PHYS_IP = IPv4Address("10.0.0.1")
CLIENT_VIRT_IP = IPv4Address("172.16.0.1")


class TestNatTable:
    def test_bidirectional(self):
        table = NatTable()
        table.set_mapping(CLIENT_VIRT_IP, CLIENT_PHYS_IP)
        assert table.to_physical(CLIENT_VIRT_IP) == CLIENT_PHYS_IP
        assert table.to_virtual(CLIENT_PHYS_IP) == CLIENT_VIRT_IP

    def test_migration_replaces_old_physical(self):
        """Remapping a virtual IP (client migration) drops the old
        physical binding — the control-plane update the paper describes."""
        table = NatTable()
        table.set_mapping(CLIENT_VIRT_IP, CLIENT_PHYS_IP)
        new_phys = IPv4Address("10.0.0.99")
        table.set_mapping(CLIENT_VIRT_IP, new_phys)
        assert table.to_physical(CLIENT_VIRT_IP) == new_phys
        assert table.to_virtual(CLIENT_PHYS_IP) is None
        assert table.to_virtual(new_phys) == CLIENT_VIRT_IP
        assert len(table) == 1

    def test_unknown_lookup_is_none(self):
        assert NatTable().to_physical(CLIENT_VIRT_IP) is None


class TestNatEcho:
    def make_design(self):
        design = NatEchoDesign(udp_port=7)
        design.map_client(CLIENT_VIRT_IP, CLIENT_PHYS_IP, CLIENT_MAC)
        return design

    def run_one(self, design, frame, cycles=3000):
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        design.inject(frame, 0)
        design.sim.run_until(lambda: sink.count >= 1, max_cycles=cycles)
        return parse_frame(sink.frames[0][0])

    def test_echo_through_nat(self):
        design = self.make_design()
        frame = build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, CLIENT_PHYS_IP,
            design.server_ip, 5555, 7, b"virtualized",
        )
        reply = self.run_one(design, frame)
        # parse_frame validates the (rewritten) UDP checksum.
        assert reply.payload == b"virtualized"
        assert reply.ip.dst == CLIENT_PHYS_IP  # translated back
        assert reply.eth.dst == CLIENT_MAC

    def test_app_sees_virtual_address(self):
        design = self.make_design()
        seen = []
        original = design.app.handle_message

        def spy(message, cycle):
            seen.append(message.metadata.ip.src)
            return original(message, cycle)

        design.app.handle_message = spy
        frame = build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, CLIENT_PHYS_IP,
            design.server_ip, 5555, 7, b"x",
        )
        self.run_one(design, frame)
        assert seen == [CLIENT_VIRT_IP]
        assert design.nat_rx.translations == 1
        assert design.nat_tx.translations == 1

    def test_unmapped_client_passes_untranslated(self):
        design = self.make_design()
        other_ip = IPv4Address("10.0.0.77")
        design.eth_tx.add_neighbor(other_ip, CLIENT_MAC)
        frame = build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, other_ip,
            design.server_ip, 5555, 7, b"x",
        )
        reply = self.run_one(design, frame)
        assert reply.ip.dst == other_ip
        assert design.nat_rx.misses == 1

    def test_migration_redirects_replies(self):
        design = self.make_design()
        new_phys = IPv4Address("10.0.0.99")
        design.map_client(CLIENT_VIRT_IP, new_phys, CLIENT_MAC)
        frame = build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, new_phys,
            design.server_ip, 5555, 7, b"after-move",
        )
        reply = self.run_one(design, frame)
        assert reply.ip.dst == new_phys


class TestIpInIpEcho:
    def make_design(self):
        design = IpInIpEchoDesign(udp_port=7)
        design.add_tunnel_peer(CLIENT_VIRT_IP, CLIENT_PHYS_IP, CLIENT_MAC)
        return design

    def request(self, design, payload=b"tunneled"):
        return build_ipinip_udp_frame(
            CLIENT_MAC, design.server_mac,
            outer_src_ip=CLIENT_PHYS_IP,
            outer_dst_ip=design.server_phys_ip,
            inner_src_ip=CLIENT_VIRT_IP,
            inner_dst_ip=design.server_virt_ip,
            src_port=5555, dst_port=7, payload=payload,
        )

    def run_one(self, design, frame, cycles=3000):
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        design.inject(frame, 0)
        design.sim.run_until(lambda: sink.count >= 1, max_cycles=cycles)
        return parse_frame(sink.frames[0][0])

    def test_echo_through_tunnel(self):
        design = self.make_design()
        reply = self.run_one(design, self.request(design))
        assert reply.payload == b"tunneled"
        # Reply is re-encapsulated: outer physical, inner virtual.
        assert reply.inner_ip is not None
        assert reply.ip.dst == CLIENT_PHYS_IP
        assert reply.ip.src == design.server_phys_ip
        assert reply.inner_ip.dst == CLIENT_VIRT_IP
        assert reply.inner_ip.src == design.server_virt_ip
        assert design.decap.decapsulated == 1
        assert design.encap.encapsulated == 1

    def test_unknown_tunnel_endpoint_dropped(self):
        design = self.make_design()
        frame = build_ipinip_udp_frame(
            CLIENT_MAC, design.server_mac,
            outer_src_ip=IPv4Address("10.0.0.66"),  # not a known peer
            outer_dst_ip=design.server_phys_ip,
            inner_src_ip=CLIENT_VIRT_IP,
            inner_dst_ip=design.server_virt_ip,
            src_port=5555, dst_port=7, payload=b"x",
        )
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        design.inject(frame, 0)
        design.sim.run(1500)
        assert sink.count == 0
        assert design.decap.drops == 1

    def test_endpoint_migration(self):
        design = self.make_design()
        new_phys = IPv4Address("10.0.0.99")
        design.add_tunnel_peer(CLIENT_VIRT_IP, new_phys, CLIENT_MAC)
        reply = self.run_one(design, self.request(design))
        assert reply.ip.dst == new_phys  # replies go to the new endpoint

    def test_duplicated_ip_tiles_both_active(self):
        design = self.make_design()
        self.run_one(design, self.request(design))
        assert design.ip_rx_outer.messages_in == 1
        assert design.ip_rx_inner.messages_in == 1
        assert design.ip_tx_inner.messages_in == 1
        assert design.ip_tx_outer.messages_in == 1
