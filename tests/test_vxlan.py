"""Tests for VXLAN: wire format, tiles, and the 15-tile overlay design."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import analyze_chains
from repro.designs import FrameSink, VxlanEchoDesign
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)
from repro.packet.vxlan import (
    VXLAN_UDP_PORT,
    VxlanHeader,
    build_vxlan_frame,
)

REMOTE_VTEP_IP = IPv4Address("10.0.0.20")
REMOTE_VTEP_MAC = MacAddress("02:be:e0:00:00:02")
CLIENT_INNER_IP = IPv4Address("192.168.0.1")
CLIENT_INNER_MAC = MacAddress("02:aa:00:00:00:01")


class TestVxlanHeader:
    def test_roundtrip(self):
        header = VxlanHeader(vni=0xABCDEF)
        parsed, rest = VxlanHeader.unpack(header.pack() + b"inner")
        assert parsed.vni == 0xABCDEF
        assert rest == b"inner"

    @given(vni=st.integers(0, (1 << 24) - 1))
    def test_any_vni_roundtrips(self, vni):
        parsed, _ = VxlanHeader.unpack(VxlanHeader(vni=vni).pack())
        assert parsed.vni == vni

    def test_vni_out_of_range(self):
        with pytest.raises(ValueError):
            VxlanHeader(vni=1 << 24)

    def test_missing_flag_rejected(self):
        data = bytearray(VxlanHeader(vni=1).pack())
        data[0] = 0
        with pytest.raises(ValueError, match="I-flag"):
            VxlanHeader.unpack(bytes(data))

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            VxlanHeader.unpack(b"\x08\x00")


def make_design(vni=7700):
    design = VxlanEchoDesign(vni=vni, udp_port=7,
                             line_rate_bytes_per_cycle=None)
    design.add_overlay_peer(CLIENT_INNER_IP, CLIENT_INNER_MAC,
                            REMOTE_VTEP_IP, REMOTE_VTEP_MAC)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)
    return design, sink


def tunnel_frame(design, payload=b"overlay", vni=None):
    inner = build_ipv4_udp_frame(
        CLIENT_INNER_MAC, design.server_inner_mac, CLIENT_INNER_IP,
        design.server_inner_ip, 5555, 7, payload,
    )
    return build_vxlan_frame(
        REMOTE_VTEP_MAC, design.server_vtep_mac, REMOTE_VTEP_IP,
        design.server_vtep_ip, vni if vni is not None else design.vni,
        inner,
    )


class TestVxlanEchoDesign:
    def test_fifteen_tiles_deadlock_free(self):
        design, _ = make_design()
        assert len(design.tiles) == 15
        assert analyze_chains(design.chains,
                              design.tile_coords) is None

    def test_end_to_end_overlay_echo(self):
        design, sink = make_design()
        design.inject(tunnel_frame(design, b"through two stacks"), 0)
        design.sim.run_until(lambda: sink.count >= 1, max_cycles=5000)
        outer = parse_frame(sink.frames[0][0])
        # Outer: VTEP to VTEP over UDP/4789, valid checksums.
        assert outer.ip.src == design.server_vtep_ip
        assert outer.ip.dst == REMOTE_VTEP_IP
        assert outer.udp.dst_port == VXLAN_UDP_PORT
        header, inner_bytes = VxlanHeader.unpack(outer.payload)
        assert header.vni == design.vni
        # Inner: the tenant's echo, also with valid checksums.
        inner = parse_frame(inner_bytes)
        assert inner.payload == b"through two stacks"
        assert inner.ip.src == design.server_inner_ip
        assert inner.ip.dst == CLIENT_INNER_IP
        assert inner.eth.dst == CLIENT_INNER_MAC

    def test_unknown_vni_dropped(self):
        design, sink = make_design(vni=7700)
        design.inject(tunnel_frame(design, vni=9999), 0)
        design.sim.run(3000)
        assert sink.count == 0
        assert design.decap.unknown_vni_drops == 1

    def test_unknown_inner_destination_dropped(self):
        design, sink = make_design()
        stranger_mac = MacAddress("02:aa:00:00:00:99")
        inner = build_ipv4_udp_frame(
            stranger_mac, design.server_inner_mac,
            IPv4Address("192.168.0.99"), design.server_inner_ip,
            5555, 7, b"x",
        )
        # Teach the inner eth_tx the stranger's MAC but not its VTEP.
        design.in_eth_tx.add_neighbor(IPv4Address("192.168.0.99"),
                                      stranger_mac)
        frame = build_vxlan_frame(
            REMOTE_VTEP_MAC, design.server_vtep_mac, REMOTE_VTEP_IP,
            design.server_vtep_ip, design.vni, inner,
        )
        design.inject(frame, 0)
        design.sim.run(4000)
        assert sink.count == 0
        assert design.encap.misses == 1

    def test_source_port_entropy_is_flow_stable(self):
        """RFC 7348 source-port entropy: same inner flow, same outer
        source port (so underlay ECMP keeps the flow together)."""
        design, sink = make_design()
        for _ in range(3):
            design.inject(tunnel_frame(design), design.sim.cycle)
        design.sim.run_until(lambda: sink.count >= 3, max_cycles=8000)
        ports = {parse_frame(f).udp.src_port for f, _ in sink.frames}
        assert len(ports) == 1
        assert 49152 <= ports.pop() < 65536

    def test_both_stacks_do_real_work(self):
        design, sink = make_design()
        design.inject(tunnel_frame(design), 0)
        design.sim.run_until(lambda: sink.count >= 1, max_cycles=5000)
        assert design.udp_rx.messages_in == 1      # outer stack
        assert design.in_udp_rx.messages_in == 1   # inner stack
        assert design.decap.decapsulated == 1
        assert design.encap.encapsulated == 1

    def test_corrupt_inner_checksum_dropped_by_inner_stack(self):
        design, sink = make_design()
        frame = bytearray(tunnel_frame(design, b"will corrupt"))
        frame[-1] ^= 0xFF  # flips a byte of the inner UDP payload
        # Outer UDP checksum must be fixed up or the outer stack drops
        # it first; easier to rebuild outer around corrupt inner.
        inner = build_ipv4_udp_frame(
            CLIENT_INNER_MAC, design.server_inner_mac,
            CLIENT_INNER_IP, design.server_inner_ip, 5555, 7,
            b"will corrupt",
        )
        inner = inner[:-1] + bytes([inner[-1] ^ 0xFF])
        bad = build_vxlan_frame(
            REMOTE_VTEP_MAC, design.server_vtep_mac, REMOTE_VTEP_IP,
            design.server_vtep_ip, design.vni, inner,
        )
        design.inject(bad, 0)
        design.sim.run(4000)
        assert sink.count == 0
        assert design.in_udp_rx.checksum_errors == 1
