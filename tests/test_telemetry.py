"""Tests for trace capture and cycle-accurate replay (section V-F)."""

from repro.designs import FrameSink, UdpEchoDesign
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame
from repro.telemetry import FrameTraceRecorder, TraceReplayer
from repro.telemetry.replay import TraceEvent

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def make_design():
    design = UdpEchoDesign(udp_port=7, line_rate_bytes_per_cycle=None)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    return design


def frame(design, payload):
    return build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                CLIENT_IP, design.server_ip, 5555, 7,
                                payload)


class TestRecorder:
    def test_records_and_passes_through(self):
        design = make_design()
        recorder = FrameTraceRecorder(design)
        recorder.attach()
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        design.inject(frame(design, b"one"), 3)
        design.inject(frame(design, b"two"), 9)
        design.sim.run_until(lambda: sink.count >= 2, max_cycles=2000)
        assert [e.cycle for e in recorder.events] == [3, 9]

    def test_detach_restores(self):
        design = make_design()
        recorder = FrameTraceRecorder(design)
        recorder.attach()
        recorder.detach()
        design.inject(frame(design, b"x"), 0)
        assert recorder.events == []


class TestReplay:
    def run_and_capture(self, design, until_count):
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        design.sim.run_until(lambda: sink.count >= until_count,
                             max_cycles=20000)
        return [(frame_bytes, cycle) for frame_bytes, cycle
                in sink.frames]

    def test_replay_reproduces_output_exactly(self):
        """A replayed trace produces byte- and cycle-identical output —
        the determinism the paper's debugging methodology relies on."""
        original = make_design()
        recorder = FrameTraceRecorder(original)
        recorder.attach()
        for index, offset in enumerate((0, 7, 40, 41, 100)):
            original.inject(frame(original, bytes([index]) * 32),
                            offset)
        original_out = self.run_and_capture(original, 5)

        replay_design = make_design()
        replayer = TraceReplayer(replay_design, recorder.events)
        replay_design.sim.add(replayer)
        replay_out = self.run_and_capture(replay_design, 5)
        assert replay_out == original_out

    def test_replay_offset_shifts_timing(self):
        design = make_design()
        events = [TraceEvent(cycle=10, frame=frame(design, b"a" * 16))]
        replayer = TraceReplayer(design, events, start_cycle=50)
        design.sim.add(replayer)
        out = self.run_and_capture(design, 1)
        original = make_design()
        original.inject(frame(original, b"a" * 16), 50)
        expected = self.run_and_capture(original, 1)
        assert out[0][1] == expected[0][1]

    def test_done_flag(self):
        design = make_design()
        replayer = TraceReplayer(design, [])
        assert replayer.done


class TestDesignStats:
    def test_counters_and_report(self):
        from repro.telemetry import design_counters, design_report

        design = make_design()
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        design.inject(frame(design, b"count me"), 0)
        design.sim.run_until(lambda: sink.count >= 1, max_cycles=2000)

        counters = design_counters(design)
        by_name = {tile.name: tile for tile in counters["tiles"]}
        assert by_name["udp_rx"].messages_in == 1
        assert by_name["app"].messages_out == 1
        assert counters["total_flits"] > 0

        report = design_report(design)
        assert "udp_rx" in report
        assert "NoC flits forwarded" in report
        assert f"cycle {design.sim.cycle}" in report

    def test_drops_visible_in_report(self):
        from repro.telemetry import design_counters

        design = make_design()
        bad = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                   CLIENT_IP, design.server_ip, 5555,
                                   9999, b"no such port")
        design.inject(bad, 0)
        design.sim.run(600)
        counters = design_counters(design)
        by_name = {tile.name: tile for tile in counters["tiles"]}
        assert by_name["udp_rx"].drops == 1


class TestDesignCountersEdgeCases:
    """The scrape surface must survive whatever a design gives it."""

    class _StubMesh:
        def __init__(self):
            self.routers = {}
            self.total_flits_forwarded = 0

    class _StubSim:
        cycle = 123

    def _design(self, tiles):
        stub = type("StubDesign", (), {})()
        stub.tiles = tiles
        stub.mesh = self._StubMesh()
        stub.sim = self._StubSim()
        return stub

    def _tile(self, name, **attrs):
        tile = type("StubTile", (), {})()
        tile.name = name
        tile.coord = attrs.pop("coord", (0, 0))
        for key, value in attrs.items():
            setattr(tile, key, value)
        return tile

    def test_tiles_as_dict_and_list_agree(self):
        from repro.telemetry import design_counters

        tile = self._tile("only", messages_in=7)
        as_list = design_counters(self._design([tile]))
        as_dict = design_counters(self._design({"only": tile}))
        assert as_list["tiles"] == as_dict["tiles"]
        assert as_list["tiles"][0].messages_in == 7

    def test_missing_attributes_report_zero(self):
        """A bare stub tile (no counters, no port) must scrape as
        zeros, never raise — monitoring cannot take the design down."""
        from repro.telemetry import design_counters

        counters = design_counters(self._design([self._tile("bare")]))
        tile = counters["tiles"][0]
        assert tile.messages_in == 0
        assert tile.drops == 0
        assert tile.drop_reasons == {}
        assert tile.eject_high_water == 0
        assert tile.tx_backlog_high_water == 0

    def test_drop_reasons_copied_not_aliased(self):
        from repro.telemetry import design_counters

        reasons = {"bad_csum": 2}
        tile = self._tile("t", drops=2, drop_reasons=reasons)
        counters = design_counters(self._design([tile]))
        counters["tiles"][0].drop_reasons["bad_csum"] = 99
        assert reasons["bad_csum"] == 2  # caller's dict untouched

    def test_none_drop_reasons_tolerated(self):
        from repro.telemetry import design_counters

        tile = self._tile("t", drop_reasons=None)
        counters = design_counters(self._design([tile]))
        assert counters["tiles"][0].drop_reasons == {}

    def test_flit_attribution_identical_across_backends(self):
        """Per-router flit counts (and their report rendering) must
        not depend on which mesh backend ran the design."""
        from repro.designs import UdpEchoDesign
        from repro.telemetry import design_counters

        def flits(backend):
            design = UdpEchoDesign(udp_port=7,
                                   line_rate_bytes_per_cycle=None,
                                   mesh_backend=backend)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            design.inject(frame(design, b"route me"), 0)
            design.sim.run(600)
            counters = design_counters(design)
            return counters["router_flits"], counters["total_flits"]

        assert flits("flat") == flits("object")

    def test_report_includes_p999_column(self):
        from repro.telemetry import (
            MetricsWindow,
            Tracer,
            attach_tracer,
            design_report,
        )

        design = make_design()
        tracer = attach_tracer(design, Tracer())
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        design.inject(frame(design, b"measure me"), 0)
        design.sim.run_until(lambda: sink.count >= 1, max_cycles=2000)
        report = design_report(design, MetricsWindow(tracer, 500))
        assert "p999" in report
        assert "ej hwm" in report and "tx hwm" in report
