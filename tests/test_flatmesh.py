"""Unit tests for the flat (array-of-struct) mesh backend and the
kernel knobs that ship with it.

The heavyweight correctness bar — bit-identity with the object mesh
across every shipped design, kernel, and trace stream — lives in
``test_kernel_equivalence.py``; these tests pin the backend's local
contracts: the factory, the view adapters, raw flit traffic, the
late-attach wake path, and the new ``CycleSimulator`` kwargs.
"""

import pytest

from repro.noc.flatmesh import FlatMesh, FlatRouterView, build_mesh
from repro.noc.mesh import LocalPort, Mesh
from repro.noc.message import NocMessage, reset_id_counters
from repro.noc.routing import Port
from repro.sim.kernel import CycleSimulator, StagedFifo


class TestBuildMesh:
    def test_object_backend(self):
        mesh = build_mesh(3, 2, backend="object")
        assert isinstance(mesh, Mesh)
        assert (mesh.width, mesh.height) == (3, 2)

    def test_flat_backend(self):
        mesh = build_mesh(3, 2, backend="flat")
        assert isinstance(mesh, FlatMesh)
        assert (mesh.width, mesh.height) == (3, 2)

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            build_mesh(3, 2, backend="vapor")

    def test_options_forwarded(self):
        mesh = build_mesh(2, 2, fifo_depth=7, routing="yx",
                          backend="flat")
        assert mesh.routing == "yx"
        view = mesh.routers[(0, 0)]
        assert view.inputs[Port.EAST].capacity == 7

    def test_bad_dimensions(self):
        for backend in ("object", "flat"):
            with pytest.raises(ValueError):
                build_mesh(0, 2, backend=backend)

    def test_bad_routing(self):
        for backend in ("object", "flat"):
            with pytest.raises(ValueError):
                build_mesh(2, 2, routing="zigzag", backend=backend)


class TestFlatMeshStructure:
    def test_router_grid_matches_object_mesh(self):
        flat = build_mesh(4, 3, backend="flat")
        obj = build_mesh(4, 3, backend="object")
        assert set(flat.routers) == set(obj.routers)
        for coord, view in flat.routers.items():
            assert isinstance(view, FlatRouterView)
            assert view.coord == coord
            assert view.name == obj.routers[coord].name

    def test_local_input_is_a_real_fifo(self):
        mesh = build_mesh(2, 2, backend="flat")
        local = mesh.routers[(1, 0)].inputs[Port.LOCAL]
        assert isinstance(local, StagedFifo)
        assert local.name == "router(1, 0).in.local"

    def test_direction_inputs_are_ring_views(self):
        mesh = build_mesh(2, 2, backend="flat")
        east = mesh.routers[(0, 0)].inputs[Port.EAST]
        assert len(east) == 0
        assert east.occupancy == 0
        assert east.peek() is None
        assert east.name == "router(0, 0).in.east"

    def test_connect_output_rejects_directions(self):
        mesh = build_mesh(2, 2, backend="flat")
        with pytest.raises(ValueError):
            mesh.routers[(0, 0)].connect_output(
                Port.EAST, StagedFifo(4, name="x"))

    def test_attach_is_idempotent(self):
        mesh = build_mesh(2, 2, backend="flat")
        port = mesh.attach((1, 1))
        assert isinstance(port, LocalPort)
        assert mesh.attach((1, 1)) is port

    def test_attach_off_mesh_raises(self):
        mesh = build_mesh(2, 2, backend="flat")
        with pytest.raises(KeyError):
            mesh.attach((5, 5))


def _run_raw_traffic(backend, kernel, cycles=200):
    """Send two multi-flit messages corner-to-corner and return every
    observable outcome."""
    reset_id_counters()
    sim = CycleSimulator(kernel=kernel, mesh_backend=backend)
    mesh = build_mesh(3, 3, backend=backend)
    src = mesh.attach((0, 0))
    dst = mesh.attach((2, 2))
    mesh.register(sim)
    src.send(NocMessage(dst=(2, 2), src=(0, 0), metadata="hello",
                        data=bytes(range(130))))
    src.send(NocMessage(dst=(2, 2), src=(0, 0), metadata="again",
                        data=bytes(64)))
    received = []
    for _ in range(cycles):
        sim.run(1)
        message = dst.receive()
        if message is not None:
            received.append(
                (sim.cycle, message.metadata, bytes(message.data))
            )
    per_router = {coord: router.flits_forwarded
                  for coord, router in mesh.routers.items()}
    return {
        "received": received,
        "sent": src.messages_sent,
        "injected": src.flits_injected,
        "total_flits": mesh.total_flits_forwarded,
        "per_router": per_router,
    }


class TestRawTraffic:
    @pytest.mark.parametrize("kernel", ["naive", "scheduled"])
    def test_flat_matches_object(self, kernel):
        flat = _run_raw_traffic("flat", kernel)
        obj = _run_raw_traffic("object", kernel)
        assert flat == obj

    def test_messages_arrive_intact(self):
        out = _run_raw_traffic("flat", "scheduled")
        assert [m[1] for m in out["received"]] == ["hello", "again"]
        assert out["received"][0][2] == bytes(range(130))
        assert out["total_flits"] > 0


class TestLateAttach:
    @pytest.mark.parametrize("backend", ["object", "flat"])
    def test_port_attached_after_register_still_works(self, backend):
        """The managed design attaches its controller port after
        ``mesh.register``; the flat core must adopt (and wake for)
        such a port without it ever entering the simulator."""
        reset_id_counters()
        sim = CycleSimulator(kernel="scheduled", mesh_backend=backend)
        mesh = build_mesh(2, 2, backend=backend)
        early = mesh.attach((0, 0))
        mesh.register(sim)
        sim.run(50)  # everything idle: the kernel is asleep
        late = mesh.attach((1, 1))
        if not mesh.steps_ports:
            sim.add(late)
        early.send(NocMessage(dst=(1, 1), src=(0, 0),
                              metadata="late", data=bytes(16)))
        got = []
        for _ in range(50):
            sim.run(1)
            message = late.receive()
            if message is not None:
                got.append(message.metadata)
        assert got == ["late"]
        # And the reverse direction: traffic *from* the late port.
        late.send(NocMessage(dst=(0, 0), src=(1, 1),
                             metadata="reply", data=bytes(16)))
        back = []
        for _ in range(50):
            sim.run(1)
            message = early.receive()
            if message is not None:
                back.append(message.metadata)
        assert back == ["reply"]


class TestKernelKwargs:
    def test_defaults(self):
        sim = CycleSimulator()
        assert sim.saturation_threshold == 0.25
        assert sim.mesh_backend == "object"
        # The adaptive prune cadence starts at its floor.
        assert sim.prune_interval == 32

    def test_explicit_values_survive(self):
        sim = CycleSimulator(saturation_threshold=0.5,
                             prune_interval=100)
        assert sim.saturation_threshold == 0.5
        assert sim.prune_interval == 100
        mesh = build_mesh(8, 8, backend="flat")
        mesh.register(sim)
        assert sim.prune_interval == 100  # explicit => never adapted

    def test_prune_interval_starts_at_floor_regardless_of_size(self):
        # The cadence is adaptive (driven by what pruning ticks find at
        # runtime, see tests/test_adaptive_prune.py), not derived from
        # design size: registration leaves it at the floor.
        small = CycleSimulator()
        build_mesh(2, 2, backend="flat").register(small)
        big = CycleSimulator()
        build_mesh(16, 16, backend="flat").register(big)
        assert small.prune_interval == 32
        assert big.prune_interval == 32

    def test_flat_core_weight_counts_routers_and_ports(self):
        mesh = build_mesh(4, 4, backend="flat")
        assert mesh.core.kernel_weight == 16
        mesh.attach((0, 0))
        mesh.attach((3, 3))
        assert mesh.core.kernel_weight == 18

    def test_validation(self):
        with pytest.raises(ValueError):
            CycleSimulator(saturation_threshold=-0.1)
        with pytest.raises(ValueError):
            CycleSimulator(prune_interval=0)
        with pytest.raises(ValueError):
            CycleSimulator(mesh_backend="vapor")

    def test_saturation_threshold_zero_disables_idle_skip_bypass(self):
        # threshold 0 -> the bypass fires whenever anything is active,
        # which must not change results (covered by equivalence); here
        # just pin that it is accepted and reported.
        sim = CycleSimulator(saturation_threshold=0.0)
        assert sim.saturation_threshold == 0.0
