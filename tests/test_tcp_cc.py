"""Tests for the pluggable congestion-control strategies.

The algorithm unit tests drive bare flow objects (anything with
``cwnd``/``ssthresh`` attributes) through ACK/loss/timeout events and
check the window against the textbook traces: slow start doubles per
RTT, Reno halves on triple-dup-ACK, Tahoe collapses to one MSS, CUBIC
follows its closed-form cubic.  The integration tests run the
competing-flows harness and pin the acceptance property: the three
algorithms produce *distinct* completion/fairness signatures through
the same seeded loss.
"""

from types import SimpleNamespace

import pytest

from repro.tcp.cc import (
    CubicCC,
    RenoCC,
    TahoeCC,
    cubic_window,
    make_cc,
)

MSS = 1000


def make_flow(cc, cycle=0):
    flow = SimpleNamespace()
    cc.on_connect(flow, MSS, cycle)
    return flow


def ack_window(cc, flow, cycle=0):
    """Deliver one ACK per outstanding MSS — one idealised RTT."""
    segments = max(1, flow.cwnd // MSS)
    for _ in range(segments):
        cc.on_ack(flow, MSS, MSS, cycle)


class TestSlowStart:
    def test_window_doubles_per_rtt(self):
        cc = RenoCC()
        flow = make_flow(cc)
        trace = [flow.cwnd]
        for _ in range(3):
            ack_window(cc, flow)
            trace.append(flow.cwnd)
        assert trace == [2000, 4000, 8000, 16000]

    def test_congestion_avoidance_is_linear(self):
        cc = RenoCC()
        flow = make_flow(cc)
        flow.cwnd = 10 * MSS
        flow.ssthresh = 10 * MSS  # at threshold: avoidance mode
        ack_window(cc, flow)
        # Ten ACKs each add mss*mss/cwnd ~ mss/10: one MSS per RTT.
        assert 10 * MSS < flow.cwnd <= 11 * MSS

    def test_all_strategies_share_slow_start(self):
        for cc in (TahoeCC(), RenoCC(), CubicCC()):
            flow = make_flow(cc)
            ack_window(cc, flow)
            assert flow.cwnd == 4000, type(cc).__name__


class TestLossResponse:
    def test_reno_halves_on_triple_dup_ack(self):
        cc = RenoCC()
        flow = make_flow(cc)
        flow.cwnd = 16 * MSS
        cc.on_loss(flow, 16 * MSS, MSS, cycle=100)
        assert flow.ssthresh == 8 * MSS
        assert flow.cwnd == 8 * MSS  # halved, not collapsed

    def test_tahoe_collapses_on_triple_dup_ack(self):
        cc = TahoeCC()
        flow = make_flow(cc)
        flow.cwnd = 16 * MSS
        cc.on_loss(flow, 16 * MSS, MSS, cycle=100)
        assert flow.ssthresh == 8 * MSS
        assert flow.cwnd == MSS  # Tahoe restarts from one segment

    def test_timeout_collapses_all_strategies(self):
        for cc in (TahoeCC(), RenoCC()):
            flow = make_flow(cc)
            flow.cwnd = 16 * MSS
            cc.on_timeout(flow, 16 * MSS, MSS, cycle=100)
            assert flow.cwnd == MSS, type(cc).__name__
            assert flow.ssthresh == 8 * MSS

    def test_loss_floor_is_two_mss(self):
        cc = RenoCC()
        flow = make_flow(cc)
        flow.cwnd = MSS
        cc.on_loss(flow, MSS, MSS, cycle=100)
        assert flow.ssthresh == 2 * MSS
        assert flow.cwnd == 2 * MSS


class TestCubic:
    def test_closed_form_properties(self):
        # At t == K the curve returns exactly to w_max.
        w_max = 10.0
        k = (w_max * (1 - 0.7) / 0.4) ** (1.0 / 3.0)
        assert cubic_window(k, w_max) == pytest.approx(w_max)
        # At t == 0 it starts from the post-loss window.
        assert cubic_window(0.0, w_max) == pytest.approx(0.7 * w_max)
        # Past K it grows beyond w_max (probing).
        assert cubic_window(k + 1.0, w_max) > w_max

    def test_growth_matches_closed_form(self):
        cc = CubicCC(cycles_per_unit=1000)
        flow = make_flow(cc)
        flow.cwnd = 10 * MSS
        cc.on_loss(flow, 10 * MSS, MSS, cycle=0)
        assert flow.cwnd == 7 * MSS  # beta = 0.7
        assert flow.cc_wmax == pytest.approx(10.0)
        # First post-loss ACK anchors the epoch; growth then follows
        # w(t) = C*(t - K)^3 + w_max in MSS units.
        cc.on_ack(flow, MSS, MSS, cycle=2000)
        for cycle in (3000, 4000, 5000, 6000):
            cc.on_ack(flow, MSS, MSS, cycle=cycle)
            t = (cycle - 2000) / 1000.0
            expected = int(cubic_window(t, 10.0) * MSS)
            assert flow.cwnd == max(7 * MSS, expected), cycle

    def test_window_is_monotone_between_losses(self):
        cc = CubicCC(cycles_per_unit=1000)
        flow = make_flow(cc)
        flow.cwnd = 10 * MSS
        cc.on_loss(flow, 10 * MSS, MSS, cycle=0)
        last = flow.cwnd
        for cycle in range(1000, 20_000, 1000):
            cc.on_ack(flow, MSS, MSS, cycle=cycle)
            assert flow.cwnd >= last
            last = flow.cwnd

    def test_timeout_restarts_from_one_mss(self):
        cc = CubicCC(cycles_per_unit=1000)
        flow = make_flow(cc)
        flow.cwnd = 10 * MSS
        cc.on_timeout(flow, 10 * MSS, MSS, cycle=0)
        assert flow.cwnd == MSS
        assert flow.cc_wmax == pytest.approx(10.0)


class TestMakeCc:
    def test_disabled_spellings(self):
        for spec in (None, False, "", "none", "off"):
            assert make_cc(spec) is None

    def test_true_means_reno(self):
        assert isinstance(make_cc(True), RenoCC)

    def test_names(self):
        assert isinstance(make_cc("tahoe"), TahoeCC)
        assert isinstance(make_cc("reno"), RenoCC)
        assert isinstance(make_cc("cubic"), CubicCC)
        assert isinstance(make_cc("CUBIC"), CubicCC)

    def test_instance_passthrough(self):
        cc = CubicCC(cycles_per_unit=500)
        assert make_cc(cc) is cc

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="bbr"):
            make_cc("bbr")

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            make_cc(3.14)


class TestEngineCubic:
    def test_server_engine_accepts_cubic_by_name(self):
        from repro.designs.tcp_stack import TcpServerDesign
        from repro.packet import IPv4Address, MacAddress
        from repro.tcp.app import TcpSourceAppTile
        from repro.tcp.peer import SoftTcpPeer

        design = TcpServerDesign(
            tcp_port=5000, app_tile_cls=TcpSourceAppTile,
            request_size=64, mss=MSS, chunk_size=16384,
            line_rate_bytes_per_cycle=None,
            congestion_control="cubic",
        )
        ip, mac = IPv4Address("10.0.0.1"), \
            MacAddress("02:00:00:00:00:01")
        design.add_client(ip, mac)
        peer = SoftTcpPeer(design, ip, mac, design.server_ip, 5000,
                           service_cycles=2, window=60_000,
                           wire_cycles=400)
        design.sim.add(peer)
        peer.connect()
        design.sim.run_until(lambda: len(peer.received) >= 16_000,
                             max_cycles=2_000_000)
        flow_id = design.flows.flows()[0]
        assert design.flows.tx[flow_id].cwnd >= 2 * MSS


class TestCompetingFlowSignatures:
    """The acceptance property: three algorithms, same seeded loss,
    distinct regression-tested signatures."""

    @pytest.fixture(scope="class")
    def signatures(self):
        from repro.loadgen.flows import run_competing_flows
        return {cc: run_competing_flows(cc=cc)
                for cc in ("tahoe", "reno", "cubic")}

    def test_full_stream_delivery_through_loss(self, signatures):
        for cc, result in signatures.items():
            assert result["all_delivered"], cc
            assert result["wire_drops"] > 0, cc
            for flow in result["flows"]:
                assert flow["complete"], (cc, flow["src_port"])

    def test_losses_recovered_by_fast_retransmit(self, signatures):
        for cc, result in signatures.items():
            assert result["total_fast_retransmits"] > 0, cc

    def test_signatures_are_distinct(self, signatures):
        completions = {cc: r["completion_cycle"]
                       for cc, r in signatures.items()}
        assert len(set(completions.values())) == 3, completions
        jains = {cc: r["jain_fairness"]
                 for cc, r in signatures.items()}
        assert len(set(jains.values())) == 3, jains

    def test_reno_beats_tahoe(self, signatures):
        """Reno halves where Tahoe collapses to one MSS; through the
        same drop schedule Reno must finish first."""
        assert signatures["reno"]["completion_cycle"] < \
            signatures["tahoe"]["completion_cycle"]

    def test_fairness_stays_high(self, signatures):
        for cc, result in signatures.items():
            assert result["jain_fairness"] > 0.9, cc

    def test_signature_is_deterministic(self, signatures):
        import json

        from repro.loadgen.flows import run_competing_flows
        again = run_competing_flows(cc="reno")
        assert json.dumps(again, sort_keys=True) == \
            json.dumps(signatures["reno"], sort_keys=True)
