"""Differential tests: the scheduled kernel must be cycle-exact.

Every shipped design is driven with identical traffic under every
(kernel, mesh backend, tile backend) combination — ``kernel="naive"``
(the exhaustive reference scheduler) vs ``kernel="scheduled"``
(activity scheduling with idle-skip), crossed with
``mesh_backend="object"|"flat"`` (per-router components vs the
array-of-struct batch core) and ``tile_backend="object"|"flat"``
(per-tile schedule entries vs the flat tile engine) — and the
complete observable state is compared:

- per-tile counters (messages/bytes in and out, drops with reasons)
  and per-router flit counts;
- every egress frame with its emit cycle;
- the full trace event streams (tile spans, injection spans, drops,
  per-link flit and stall events, buffer levels, trace horizon).

Any scheduling or batching bug — a missed wake, a late timer, a
reordered step, a flit moved through the wrong arbitration order —
shows up as a diff here, which is the correctness bar both refactors
are held to (an optimisation that changes results is a different
simulator, not a faster one).
"""

import pytest

from repro.designs import (
    FrameSink,
    FrameSource,
    LoggedUdpEchoDesign,
    MultiStackDesign,
    ScaledEchoDesign,
    UdpEchoDesign,
    VxlanEchoDesign,
)
from repro.designs.rs_design import RsDesign
from repro.designs.tcp_stack import TcpServerDesign
from repro.designs.virt_stack import NatEchoDesign
from repro.designs.vr_design import VrWitnessDesign
from repro.noc.message import reset_id_counters
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
)
from repro.packet.vxlan import build_vxlan_frame
from repro.apps.vr.tile import MSG_PREPARE, PrepareWire
from repro.tcp.peer import SoftTcpPeer
from repro.telemetry import design_counters
from repro.telemetry.trace import Tracer, attach_tracer

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")
# (kernel, mesh_backend, tile_backend) — the first combo is the
# reference: exhaustive scheduler, per-object routers, per-object tiles.
COMBOS = (
    ("naive", "object", "object"),
    ("scheduled", "object", "object"),
    ("naive", "flat", "object"),
    ("scheduled", "flat", "object"),
    ("naive", "object", "flat"),
    ("scheduled", "object", "flat"),
    ("naive", "flat", "flat"),
    ("scheduled", "flat", "flat"),
)


def fingerprint(design, sink, tracer):
    """Everything observable about a finished run, comparable across
    kernels."""
    counters = design_counters(design)
    return {
        "cycle": design.sim.cycle,
        "tiles": counters["tiles"],
        "router_flits": counters["router_flits"],
        "total_flits": counters["total_flits"],
        "frames": None if sink is None else list(sink.frames),
        "egress_count": None if sink is None else sink.count,
        "first_cycle": None if sink is None else sink.first_cycle,
        "last_cycle": None if sink is None else sink.last_cycle,
        "spans": tracer.spans,
        "inject_spans": tracer.inject_spans,
        "trace_drops": tracer.drops,
        "link_flits": tracer.link_flits,
        "link_stalls": tracer.link_stalls,
        "buffer_levels": tracer.buffer_levels,
        "trace_horizon": tracer.last_cycle,
    }


def run_both(scenario):
    """Run ``scenario(kernel, backend, tiles)`` under every combo,
    resetting
    the global id counters so packet/message ids (and the spans keyed
    by them) compare equal."""
    results = {}
    for combo in COMBOS:
        reset_id_counters()
        results[combo] = scenario(*combo)
    return results


def assert_equivalent(scenario):
    results = run_both(scenario)
    reference = results[COMBOS[0]]
    for combo, candidate in results.items():
        if combo == COMBOS[0]:
            continue
        assert set(reference) == set(candidate)
        for key in reference:
            assert reference[key] == candidate[key], (
                f"divergence in {key!r} under "
                f"kernel={combo[0]!r} mesh_backend={combo[1]!r} "
                f"tile_backend={combo[2]!r}"
            )


def echo_frame(design, payload, sport=5555, port=7):
    return build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                CLIENT_IP, design.server_ip, sport,
                                port, payload)


class TestUdpEchoEquivalence:
    def test_idle_heavy_paced_traffic(self):
        """10% line rate: mostly idle cycles — the idle-skip sweet
        spot, and exactly where a wrong wake would surface."""

        def scenario(kernel, backend, tiles):
            design = UdpEchoDesign(udp_port=7,
                                   line_rate_bytes_per_cycle=50.0,
                                   kernel=kernel,
                                   mesh_backend=backend, tile_backend=tiles)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            tracer = attach_tracer(design, Tracer())
            frame = echo_frame(design, b"x" * 64)
            source = FrameSource(design.inject, lambda i: frame,
                                 rate=5.0, count=20)
            sink = FrameSink(design.eth_tx)
            design.sim.add(source)
            design.sim.add(sink)
            design.sim.run(6000)
            assert sink.count == 20
            return fingerprint(design, sink, tracer)

        assert_equivalent(scenario)

    def test_saturating_traffic(self):
        """Saturation: no idle cycles, contention and backpressure
        everywhere — checks the active-set path under load."""

        def scenario(kernel, backend, tiles):
            design = UdpEchoDesign(udp_port=7,
                                   line_rate_bytes_per_cycle=None,
                                   kernel=kernel,
                                   mesh_backend=backend, tile_backend=tiles)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            tracer = attach_tracer(design, Tracer())
            frame = echo_frame(design, b"y" * 256)
            source = FrameSource(design.inject, lambda i: frame,
                                 rate=None, count=64)
            sink = FrameSink(design.eth_tx)
            design.sim.add(source)
            design.sim.add(sink)
            design.sim.run(4000)
            assert sink.count == 64
            return fingerprint(design, sink, tracer)

        assert_equivalent(scenario)

    def test_bursts_with_long_gaps(self):
        """Bursts separated by thousand-cycle gaps: each gap is an
        idle-skip; each burst must land on the exact cycle."""

        def scenario(kernel, backend, tiles):
            design = UdpEchoDesign(udp_port=7,
                                   line_rate_bytes_per_cycle=50.0,
                                   kernel=kernel,
                                   mesh_backend=backend, tile_backend=tiles)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            tracer = attach_tracer(design, Tracer())
            sink = FrameSink(design.eth_tx)
            design.sim.add(sink)
            for burst in range(4):
                base = burst * 2500
                for i in range(3):
                    design.inject(
                        echo_frame(design, bytes([burst]) * 100),
                        base + i,
                    )
                design.sim.run(base + 2500 - design.sim.cycle)
            assert sink.count == 12
            return fingerprint(design, sink, tracer)

        assert_equivalent(scenario)

    def test_mixed_drops_and_misses(self):
        """Frames for the wrong port/MAC exercise the drop paths."""

        def scenario(kernel, backend, tiles):
            design = UdpEchoDesign(udp_port=7,
                                   line_rate_bytes_per_cycle=50.0,
                                   kernel=kernel,
                                   mesh_backend=backend, tile_backend=tiles)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            tracer = attach_tracer(design, Tracer())
            sink = FrameSink(design.eth_tx)
            design.sim.add(sink)
            design.inject(echo_frame(design, b"ok"), 0)
            design.inject(echo_frame(design, b"wrong", port=9), 40)
            design.inject(b"\x00" * 10, 80)  # malformed
            design.inject(echo_frame(design, b"ok2"), 1500)
            design.sim.run(3000)
            assert sink.count == 2
            return fingerprint(design, sink, tracer)

        assert_equivalent(scenario)


class TestLoggedEchoEquivalence:
    def test_logged_echo(self):
        def scenario(kernel, backend, tiles):
            design = LoggedUdpEchoDesign(udp_port=7,
                                         line_rate_bytes_per_cycle=50.0,
                                         kernel=kernel,
                                   mesh_backend=backend, tile_backend=tiles)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            tracer = attach_tracer(design, Tracer())
            sink = FrameSink(design.eth_tx)
            design.sim.add(sink)
            for i in range(6):
                design.inject(echo_frame(design, b"log" * 10),
                              i * 700)
            design.sim.run(6000)
            assert sink.count == 6
            return fingerprint(design, sink, tracer)

        assert_equivalent(scenario)


class TestTcpEquivalence:
    def test_handshake_and_transfer(self):
        """A full TCP session: handshake, request/response transfer,
        retransmission timers — the richest timer workload we have."""

        def scenario(kernel, backend, tiles):
            design = TcpServerDesign(tcp_port=5000, request_size=16,
                                     kernel=kernel,
                                   mesh_backend=backend, tile_backend=tiles)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            tracer = attach_tracer(design, Tracer())
            peer = SoftTcpPeer(design, CLIENT_IP, CLIENT_MAC,
                               design.server_ip, 5000, wire_cycles=50)
            design.sim.add(peer)
            peer.connect()
            design.sim.run(5000)
            assert peer.established
            for _ in range(8):
                peer.send(b"0123456789abcdef")
            design.sim.run(20000)
            assert len(peer.received) >= 16
            fp = fingerprint(design, None, tracer)
            fp["peer_received"] = bytes(peer.received)
            return fp

        assert_equivalent(scenario)


class TestVxlanEquivalence:
    REMOTE_VTEP_IP = IPv4Address("10.0.0.20")
    REMOTE_VTEP_MAC = MacAddress("02:be:e0:00:00:02")
    INNER_IP = IPv4Address("192.168.0.1")
    INNER_MAC = MacAddress("02:aa:00:00:00:01")

    def test_overlay_echo(self):
        def scenario(kernel, backend, tiles):
            design = VxlanEchoDesign(vni=7700, udp_port=7,
                                     line_rate_bytes_per_cycle=50.0,
                                     kernel=kernel,
                                   mesh_backend=backend, tile_backend=tiles)
            design.add_overlay_peer(self.INNER_IP, self.INNER_MAC,
                                    self.REMOTE_VTEP_IP,
                                    self.REMOTE_VTEP_MAC)
            tracer = attach_tracer(design, Tracer())
            sink = FrameSink(design.eth_tx)
            design.sim.add(sink)
            inner = build_ipv4_udp_frame(
                self.INNER_MAC, design.server_inner_mac,
                self.INNER_IP, design.server_inner_ip, 5555, 7,
                b"overlay payload",
            )
            for i in range(5):
                frame = build_vxlan_frame(
                    self.REMOTE_VTEP_MAC, design.server_vtep_mac,
                    self.REMOTE_VTEP_IP, design.server_vtep_ip,
                    7700, inner,
                )
                design.inject(frame, i * 900)
            design.sim.run(8000)
            assert sink.count == 5
            return fingerprint(design, sink, tracer)

        assert_equivalent(scenario)


class TestMultiStackEquivalence:
    def test_two_stacks_flow_spread(self):
        def scenario(kernel, backend, tiles):
            design = MultiStackDesign(stacks=2, udp_port=7,
                                      kernel=kernel,
                                   mesh_backend=backend, tile_backend=tiles)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            tracer = attach_tracer(design, Tracer())
            sinks = [FrameSink(stack.eth_tx)
                     for stack in design.stacks]
            for sink in sinks:
                design.sim.add(sink)
            for i in range(12):
                frame = echo_frame(design, b"ms" * 20,
                                   sport=6000 + i)
                design.inject(frame, i * 400)
            design.sim.run(8000)
            assert sum(s.count for s in sinks) == 12
            fp = fingerprint(design, None, tracer)
            for index, sink in enumerate(sinks):
                fp[f"frames_{index}"] = list(sink.frames)
            fp["echoed"] = design.total_echoed()
            return fp

        assert_equivalent(scenario)


class TestRsEquivalence:
    def test_round_robin_encode(self):
        def scenario(kernel, backend, tiles):
            design = RsDesign(instances=4,
                              line_rate_bytes_per_cycle=50.0,
                              kernel=kernel,
                                   mesh_backend=backend, tile_backend=tiles)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            tracer = attach_tracer(design, Tracer())
            sink = FrameSink(design.eth_tx)
            design.sim.add(sink)
            payload = bytes(range(256)) * 16  # 4096 B
            for i in range(8):
                design.inject(
                    echo_frame(design, payload, port=7000),
                    i * 800,
                )
            design.sim.run(20000)
            assert sink.count == 8
            fp = fingerprint(design, sink, tracer)
            fp["per_instance"] = [t.requests for t in design.rs_tiles]
            return fp

        assert_equivalent(scenario)


class TestVrEquivalence:
    LEADER_IP = IPv4Address("10.0.0.2")
    LEADER_MAC = MacAddress("02:00:00:00:00:02")

    def _prepare(self, design, shard, view, opnum):
        wire = PrepareWire(msg_type=MSG_PREPARE, view=view,
                           opnum=opnum, shard=shard,
                           digest=b"deadbeef")
        return build_ipv4_udp_frame(
            self.LEADER_MAC, design.server_mac, self.LEADER_IP,
            design.server_ip, 7777, design.shard_port(shard),
            wire.pack(),
        )

    def test_witness_shards(self):
        def scenario(kernel, backend, tiles):
            design = VrWitnessDesign(shards=2,
                                     line_rate_bytes_per_cycle=50.0,
                                     kernel=kernel,
                                   mesh_backend=backend, tile_backend=tiles)
            design.add_client(self.LEADER_IP, self.LEADER_MAC)
            tracer = attach_tracer(design, Tracer())
            sink = FrameSink(design.eth_tx)
            design.sim.add(sink)
            for opnum in range(1, 6):
                for shard in range(2):
                    design.inject(
                        self._prepare(design, shard, 0, opnum),
                        design.sim.cycle,
                    )
                design.sim.run(1200)
            assert sink.count == 10
            return fingerprint(design, sink, tracer)

        assert_equivalent(scenario)


class TestScaledEchoEquivalence:
    def test_many_apps(self):
        def scenario(kernel, backend, tiles):
            design = ScaledEchoDesign(n_apps=8, udp_port=7,
                                      kernel=kernel,
                                   mesh_backend=backend, tile_backend=tiles)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            tracer = attach_tracer(design, Tracer())
            sink = FrameSink(design.eth_tx)
            design.sim.add(sink)
            for i in range(16):
                design.inject(
                    echo_frame(design, b"sc" * 8, sport=7000 + i),
                    i * 300,
                )
            design.sim.run(8000)
            assert sink.count == 16
            return fingerprint(design, sink, tracer)

        assert_equivalent(scenario)


class TestNatEquivalence:
    CLIENT_VIRT_IP = IPv4Address("172.16.0.1")
    CLIENT_PHYS_IP = IPv4Address("10.0.0.1")

    def test_nat_echo(self):
        def scenario(kernel, backend, tiles):
            design = NatEchoDesign(udp_port=7,
                                   line_rate_bytes_per_cycle=50.0,
                                   kernel=kernel,
                                   mesh_backend=backend, tile_backend=tiles)
            design.map_client(self.CLIENT_VIRT_IP,
                              self.CLIENT_PHYS_IP, CLIENT_MAC)
            tracer = attach_tracer(design, Tracer())
            sink = FrameSink(design.eth_tx)
            design.sim.add(sink)
            for i in range(5):
                frame = build_ipv4_udp_frame(
                    CLIENT_MAC, design.server_mac,
                    self.CLIENT_PHYS_IP, design.server_ip, 5555, 7,
                    b"nat" * 12,
                )
                design.inject(frame, i * 600)
            design.sim.run(5000)
            assert sink.count == 5
            return fingerprint(design, sink, tracer)

        assert_equivalent(scenario)


class TestFaultEquivalence:
    """Active fault plans must not break cycle-exactness: the wire
    impairments draw from seeded streams at the inject boundary and
    the NoC faults act on the shared LocalPort staging, so every
    (kernel, backend) combo observes the bit-identical fault stream."""

    def _fault_fingerprint(self, design, sink, tracer):
        fp = fingerprint(design, sink, tracer)
        engine = design.fault_engine
        fp["fault_counters"] = dict(engine.counters)
        fp["fault_log"] = list(engine.log)
        fp["fault_events"] = list(tracer.faults)
        return fp

    def test_wire_impairments(self):
        from repro.faults import FaultPlan

        def scenario(kernel, backend, tiles):
            plan = FaultPlan(seed=0xD1CE).wire(
                drop=0.2, corrupt=0.1, duplicate=0.15, reorder=0.2,
                delay=0.3)
            design = UdpEchoDesign(udp_port=7,
                                   line_rate_bytes_per_cycle=50.0,
                                   kernel=kernel, mesh_backend=backend,
                                   tile_backend=tiles, fault_plan=plan)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            tracer = attach_tracer(design, Tracer())
            sink = FrameSink(design.eth_tx)
            design.sim.add(sink)
            for i in range(30):
                design.inject(echo_frame(design, b"f%02d" % i * 10),
                              1 + i * 150)
            design.sim.run(10_000)
            assert sink.malformed == 0
            return self._fault_fingerprint(design, sink, tracer)

        assert_equivalent(scenario)

    def test_tile_and_noc_faults(self):
        from repro.faults import FaultPlan

        def scenario(kernel, backend, tiles):
            plan = (FaultPlan(seed=0xD1CE)
                    .freeze_tile("app", at=300, duration=800)
                    .crash_tile("eth_rx", at=20, duration=100)
                    .stall_link((3, 0), at=1500, duration=400)
                    .corrupt_flits(0.3, coords=[(2, 0)]))
            design = UdpEchoDesign(udp_port=7,
                                   line_rate_bytes_per_cycle=50.0,
                                   kernel=kernel, mesh_backend=backend,
                                   tile_backend=tiles, fault_plan=plan)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            tracer = attach_tracer(design, Tracer())
            sink = FrameSink(design.eth_tx)
            design.sim.add(sink)
            for i in range(25):
                design.inject(echo_frame(design, b"g%02d" % i * 8),
                              1 + i * 120)
            design.sim.run(10_000)
            return self._fault_fingerprint(design, sink, tracer)

        assert_equivalent(scenario)


class TestIdleSkipActuallyHappens:
    """Equivalence is vacuous if the scheduled kernel never sleeps —
    pin that the idle-heavy scenarios really do skip cycles."""

    def test_paced_udp_run_skips_most_cycles(self):
        design = UdpEchoDesign(udp_port=7,
                               line_rate_bytes_per_cycle=50.0,
                               kernel="scheduled")
        design.add_client(CLIENT_IP, CLIENT_MAC)
        frame = echo_frame(design, b"x" * 64)
        source = FrameSource(design.inject, lambda i: frame,
                             rate=5.0, count=20)
        sink = FrameSink(design.eth_tx)
        design.sim.add(source)
        design.sim.add(sink)
        design.sim.run(6000)
        assert sink.count == 20
        assert design.sim.idle_cycles_skipped > 3000

    def test_naive_kernel_never_skips(self):
        design = UdpEchoDesign(udp_port=7, kernel="naive")
        design.add_client(CLIENT_IP, CLIENT_MAC)
        design.sim.run(500)
        assert design.sim.idle_cycles_skipped == 0


class TestProbedEquivalence:
    """An attached telemetry probe is read-only and timer-driven, so it
    must neither break kernel x backend equivalence nor change any
    observable of the run it samples (its wakes do bound the scheduled
    kernel's idle skips — more wakeups, same cycles)."""

    def _scenario(self, probed):
        from repro.telemetry import attach_probe

        def scenario(kernel, backend, tiles):
            design = UdpEchoDesign(udp_port=7,
                                   line_rate_bytes_per_cycle=50.0,
                                   kernel=kernel,
                                   mesh_backend=backend, tile_backend=tiles)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            tracer = attach_tracer(design, Tracer())
            probe = attach_probe(design,
                                 interval=250 if probed else None)
            frame = echo_frame(design, b"x" * 64)
            source = FrameSource(design.inject, lambda i: frame,
                                 rate=5.0, count=20)
            sink = FrameSink(design.eth_tx)
            design.sim.add(source)
            design.sim.add(sink)
            design.sim.run(6000)
            assert sink.count == 20
            if probed:
                assert probe.samples_taken == 5999 // 250
            return fingerprint(design, sink, tracer)

        return scenario

    def test_probed_runs_stay_equivalent(self):
        assert_equivalent(self._scenario(probed=True))

    def test_probe_changes_nothing_observable(self):
        results_probed = run_both(self._scenario(probed=True))
        results_plain = run_both(self._scenario(probed=False))
        for combo in COMBOS:
            for key in results_plain[combo]:
                assert results_plain[combo][key] == \
                    results_probed[combo][key], (
                        f"probe perturbed {key!r} under {combo!r}")
