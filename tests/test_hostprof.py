"""Tests for the host-side wall-clock profiler."""

import pytest

from repro.designs import FrameSink, UdpEchoDesign
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame
from repro.telemetry import HostProfiler, profile_run

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def make_design(**kwargs):
    design = UdpEchoDesign(udp_port=7, line_rate_bytes_per_cycle=None,
                           **kwargs)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    return design


def drive(design, payload=b"profile me"):
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)
    frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                 CLIENT_IP, design.server_ip, 5555, 7,
                                 payload)
    design.inject(frame, 0)
    return sink


class TestInstallUninstall:
    def test_uninstall_restores_call_sites(self):
        design = make_design()
        sim_tick = design.sim.tick
        tile = next(iter(design.tiles))
        pump = tile._pump_process
        profiler = HostProfiler().install(design)
        assert design.sim.tick is not sim_tick
        profiler.uninstall()
        assert design.sim.tick == sim_tick
        assert tile._pump_process == pump
        assert not profiler.installed

    def test_double_install_raises(self):
        design = make_design()
        profiler = HostProfiler().install(design)
        try:
            with pytest.raises(RuntimeError):
                profiler.install(design)
        finally:
            profiler.uninstall()

    def test_codec_patches_are_process_wide_but_reverted(self):
        from repro.packet import builder
        original = builder.parse_frame
        design = make_design()
        profiler = HostProfiler().install(design)
        assert builder.parse_frame is not original
        profiler.uninstall()
        assert builder.parse_frame is original

    def test_behaviour_unchanged_under_profiler(self):
        design_plain = make_design()
        sink_plain = drive(design_plain)
        design_plain.sim.run(2000)

        design_prof = make_design()
        sink_prof = drive(design_prof)
        profiler, _ = profile_run(design_prof, 2000)
        assert sink_prof.count == sink_plain.count
        assert design_prof.sim.cycle == design_plain.sim.cycle


class TestAttribution:
    def test_buckets_cover_the_phases(self):
        design = make_design()
        drive(design)
        profiler, wall = profile_run(design, 2000)
        report = profiler.report()
        assert "kernel.tick" in report
        assert "tiles.pump_process" in report
        assert "packet.codec" in report
        # Flat backend is the default: the core's phases show up.
        assert "noc.flatmesh.step" in report
        assert wall > 0

    def test_object_backend_buckets(self):
        design = make_design(mesh_backend="object")
        drive(design)
        profiler, _ = profile_run(design, 2000)
        report = profiler.report()
        assert "noc.router.step" in report
        assert "noc.localport.step" in report

    def test_sharded_design_buckets(self):
        # The sharded facades (gauge-only mesh core, per-shard tile
        # core aggregate) must still route host time into the flat
        # buckets — the profiler times the per-band inner cores.
        design = make_design(shards=2)
        drive(design)
        profiler, wall = profile_run(design, 2000)
        report = profiler.report()
        assert "noc.flatmesh.step" in report
        assert "tiles_flat" in report
        assert wall > 0
        # profile_run uninstalled: the band cores stepped unwrapped.
        for band in design.mesh.bands:
            assert not getattr(band.core.step, "__wrapped__", None)

    def test_exclusive_time_accounting(self):
        """Self time never exceeds inclusive time, and the phase
        shares sum to ~100% — nested calls are charged once."""
        design = make_design()
        drive(design)
        profiler, _ = profile_run(design, 2000)
        report = profiler.report()
        for row in report.values():
            assert 0 <= row["self_s"] <= row["total_s"] + 1e-9
        assert sum(row["self_pct"] for row in report.values()) \
            == pytest.approx(100.0)
        # tick is the outermost phase: everything nests inside it.
        tick = report["kernel.tick"]
        assert tick["self_s"] < tick["total_s"]

    def test_format_report_renders(self):
        design = make_design()
        drive(design)
        profiler, _ = profile_run(design, 500)
        text = profiler.format_report()
        assert "phase" in text and "kernel.tick" in text
