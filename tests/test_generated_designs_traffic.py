"""End-to-end traffic through XML-generated designs.

The declarative route must produce designs that are behaviourally
identical to the handwritten ones — real packets through the
Reed-Solomon and VR witness designs built from their XML files.
"""

import os

from repro.apps.reed_solomon import ReedSolomonCodec
from repro.apps.vr.tile import MSG_PREPARE, MSG_PREPARE_OK, PrepareWire
from repro.config import build_design, design_from_xml
from repro.config.examples import RS_DESIGN_XML, VR_DESIGN_XML
from repro.designs import FrameSink
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")
SERVER_MAC = MacAddress("02:be:e0:00:00:01")
SERVER_IP = IPv4Address("10.0.0.10")


def run_until(design, sink, count, max_cycles=20_000):
    design.sim.run_until(lambda: sink.count >= count,
                         max_cycles=max_cycles)


class TestGeneratedRsDesign:
    def build(self):
        design = build_design(design_from_xml(RS_DESIGN_XML))
        design.add_neighbor(CLIENT_IP, CLIENT_MAC)
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        return design, sink

    def test_xml_rs_design_encodes_correctly(self):
        design, sink = self.build()
        request = os.urandom(4096)
        frame = build_ipv4_udp_frame(CLIENT_MAC, SERVER_MAC,
                                     CLIENT_IP, SERVER_IP, 5555,
                                     7000, request)
        design.inject(frame, 0)
        run_until(design, sink, 1)
        reply = parse_frame(sink.frames[0][0])
        assert reply.payload == \
            ReedSolomonCodec(8, 2).encode_request(request)

    def test_xml_rs_design_round_robins(self):
        design, sink = self.build()
        frame = build_ipv4_udp_frame(CLIENT_MAC, SERVER_MAC,
                                     CLIENT_IP, SERVER_IP, 5555,
                                     7000, bytes(4096))
        for _ in range(8):
            design.inject(frame, design.sim.cycle)
        run_until(design, sink, 8)
        served = [design.tiles[f"rs{i}"].requests for i in range(4)]
        assert served == [2, 2, 2, 2]


class TestGeneratedVrDesign:
    def build(self):
        design = build_design(design_from_xml(VR_DESIGN_XML))
        design.add_neighbor(CLIENT_IP, CLIENT_MAC)
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        return design, sink

    def test_xml_vr_design_serves_all_shards(self):
        design, sink = self.build()
        sent = 0
        for shard in range(4):
            for opnum in (1, 2):
                wire = PrepareWire(msg_type=MSG_PREPARE, view=0,
                                   opnum=opnum, shard=shard,
                                   digest=b"12345678")
                frame = build_ipv4_udp_frame(
                    CLIENT_MAC, SERVER_MAC, CLIENT_IP, SERVER_IP,
                    7000, 9000 + shard, wire.pack(),
                )
                design.inject(frame, design.sim.cycle)
                sent += 1
        run_until(design, sink, sent)
        replies = [PrepareWire.unpack(parse_frame(f).payload)
                   for f, _ in sink.frames]
        assert all(r.msg_type == MSG_PREPARE_OK for r in replies)
        for shard in range(4):
            witness = design.tiles[f"witness{shard}"]
            assert witness.state.last_opnum == 2
