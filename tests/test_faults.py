"""Tests for ``repro.faults``: deterministic fault injection.

Covers the plan builder's validation, the null-plan fast path, every
wire impairment, tile freeze/crash with kernel-wake-safe resume, NoC
link stalls and flit corruption, fault telemetry (tracer events and
the design report), the wall-clock run budget, and the two end-to-end
recovery claims: TCP delivers a full byte stream through 1% wire loss,
and a VR cluster completes a view change around a frozen leader.
"""

import pytest

from repro.designs import FrameSink, UdpEchoDesign
from repro.designs.tcp_stack import TcpServerDesign
from repro.faults import FaultPlan, apply_vr_faults, attach_faults
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)
from repro.sim.kernel import WallClockBudgetExceeded
from repro.tcp.peer import SoftTcpPeer
from repro.telemetry import design_counters, design_report
from repro.telemetry.trace import Tracer, attach_tracer, chrome_trace_events

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def echo_design(plan, **kwargs):
    design = UdpEchoDesign(udp_port=7, fault_plan=plan, **kwargs)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)
    return design, sink


def inject_echoes(design, count=20, gap=40, start=1):
    for i in range(count):
        frame = build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, CLIENT_IP, design.server_ip,
            5555, 7, b"payload-%02d" % i)
        design.inject(frame, start + i * gap)


class TestFaultPlanValidation:
    def test_probability_out_of_range(self):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan().wire(drop=1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultPlan().wire(corrupt=-0.1)

    def test_bad_delay_range(self):
        with pytest.raises(ValueError, match="delay_range"):
            FaultPlan().wire(delay=0.5, delay_range=(10, 5))
        with pytest.raises(ValueError, match="delay_range"):
            FaultPlan().wire(delay=0.5, delay_range=(0, 5))

    def test_bad_window(self):
        with pytest.raises(ValueError, match="duration"):
            FaultPlan().freeze_tile("app", at=10, duration=0)
        with pytest.raises(ValueError, match="start cycle"):
            FaultPlan().stall_link((0, 0), at=-1, duration=5)

    def test_bad_vr_role(self):
        with pytest.raises(ValueError, match="role"):
            FaultPlan().vr_freeze("observer", 0, 0.1, 0.1)

    def test_is_null(self):
        assert FaultPlan().is_null
        # All-zero probabilities inject nothing: still null.
        assert FaultPlan().wire().is_null
        assert not FaultPlan().wire(drop=0.1).is_null
        assert not FaultPlan().freeze_tile("app", 5, 5).is_null

    def test_describe_lists_faults(self):
        plan = (FaultPlan(seed=7).wire(drop=0.25)
                .crash_tile("app", at=100, duration=50))
        text = plan.describe()
        assert "drop" in text and "crash" in text and "app" in text


class TestNullFastPath:
    def test_no_plan_installs_nothing(self):
        design, _sink = echo_design(None)
        assert design.fault_engine is None
        assert getattr(design, "fault_wire", None) is None
        # inject is still the class method, not a wire-bound shadow.
        assert "inject" not in vars(design)

    def test_null_plan_installs_nothing(self):
        design, _sink = echo_design(FaultPlan(seed=3))
        assert design.fault_engine is None
        assert "inject" not in vars(design)

    def test_double_attach_rejected(self):
        design, _sink = echo_design(FaultPlan().wire(drop=0.5))
        with pytest.raises(ValueError, match="already"):
            attach_faults(design, FaultPlan().wire(drop=0.5))

    def test_unknown_tile_rejected(self):
        with pytest.raises(KeyError, match="no_such_tile"):
            echo_design(FaultPlan().freeze_tile("no_such_tile", 1, 1))


class TestWireFaults:
    def test_drop_all(self):
        design, sink = echo_design(FaultPlan(seed=1).wire(drop=1.0))
        inject_echoes(design)
        design.sim.run(5000)
        assert sink.count == 0
        assert design.fault_engine.counters["wire.drop"] == 20
        assert design.fault_wire.frames_offered == 20
        assert design.fault_wire.frames_delivered == 0

    def test_duplicate_all(self):
        design, sink = echo_design(FaultPlan(seed=1).wire(duplicate=1.0))
        inject_echoes(design)
        design.sim.run(8000)
        assert sink.count == 40
        assert design.fault_engine.counters["wire.duplicate"] == 20

    def test_delay_loses_nothing(self):
        design, sink = echo_design(
            FaultPlan(seed=1).wire(delay=1.0, delay_range=(100, 200)))
        inject_echoes(design)
        design.sim.run(8000)
        assert sink.count == 20

    def test_corrupt_is_caught_by_checksums(self):
        """Corrupted frames are dropped by the stack's checksum and
        address checks — never echoed corrupted, never emitted as
        garbage."""
        design, sink = echo_design(FaultPlan(seed=1).wire(corrupt=1.0))
        inject_echoes(design)
        design.sim.run(8000)
        assert design.fault_engine.counters["wire.corrupt"] == 20
        assert sink.count < 20
        assert sink.malformed == 0
        sent = {b"payload-%02d" % i for i in range(20)}
        for frame, _cycle in sink.frames:
            assert parse_frame(frame).payload in sent

    def test_same_seed_is_bit_identical(self):
        def run(seed):
            design, sink = echo_design(
                FaultPlan(seed=seed).wire(drop=0.3, corrupt=0.2,
                                          duplicate=0.2, reorder=0.3,
                                          delay=0.5))
            inject_echoes(design, count=40)
            design.sim.run(10_000)
            return (list(sink.frames), dict(design.fault_engine.counters),
                    list(design.fault_engine.log))

        assert run(42) == run(42)
        assert run(42) != run(43)


class TestTileFaults:
    def test_freeze_delays_but_loses_nothing(self):
        plan = FaultPlan(seed=1).freeze_tile("app", at=10, duration=2000)
        design, sink = echo_design(plan)
        baseline, base_sink = echo_design(None)
        inject_echoes(design, count=5, gap=40)
        inject_echoes(baseline, count=5, gap=40)
        design.sim.run(8000)
        baseline.sim.run(8000)
        assert sink.count == 5  # everything queued through the freeze
        assert sink.last_cycle > base_sink.last_cycle
        counters = design.fault_engine.counters
        assert counters["tile.freeze"] == 1
        assert counters["tile.thaw"] == 1

    def test_frozen_tile_resumes_under_scheduled_kernel(self):
        """Kernel-wake-safe resume: with idle-skip active, the thaw
        must wake the tile even though nothing else is scheduled."""
        plan = FaultPlan(seed=1).freeze_tile("app", at=10, duration=3000)
        design, sink = echo_design(plan, kernel="scheduled")
        inject_echoes(design, count=3, gap=10)
        design.sim.run(8000)
        assert sink.count == 3

    def test_crash_loses_buffered_messages(self):
        # Saturating burst into a crash window: whatever the ingress
        # tile holds at the crash point is gone, the rest echoes
        # (frames arriving during the outage queue up and survive).
        plan = FaultPlan(seed=1).crash_tile("eth_rx", at=10, duration=500)
        design, sink = echo_design(plan)
        inject_echoes(design, count=20, gap=2)
        design.sim.run(8000)
        eth_rx = {t.name: t for t in design.tiles}["eth_rx"]
        lost = eth_rx.drop_reasons.get("fault: crash", 0)
        assert lost > 0
        assert sink.count == 20 - lost
        assert design.fault_engine.counters["tile.crash_lost_msgs"] == lost

    def test_stall_link_delays_ejection(self):
        plan = FaultPlan(seed=1).stall_link((3, 0), at=50, duration=1500)
        design, sink = echo_design(plan)
        baseline, base_sink = echo_design(None)
        inject_echoes(design, count=5, gap=10)
        inject_echoes(baseline, count=5, gap=10)
        design.sim.run(8000)
        baseline.sim.run(8000)
        assert sink.count == 5
        assert sink.last_cycle > base_sink.last_cycle
        assert design.fault_engine.counters["noc.stall"] == 1
        assert design.fault_engine.counters["noc.unstall"] == 1

    def test_flit_corruption_is_caught_by_checksums(self):
        # Corrupt every DATA flit ejected into the UDP RX tile: the
        # UDP checksum rejects the payloads, nothing garbled egresses.
        plan = FaultPlan(seed=1).corrupt_flits(1.0, coords=[(2, 0)])
        design, sink = echo_design(plan)
        inject_echoes(design, count=10)
        design.sim.run(8000)
        assert design.fault_engine.counters["noc.flit_corrupt"] > 0
        assert sink.count == 0
        assert sink.malformed == 0


class TestFaultTelemetry:
    def _faulty_run(self):
        plan = (FaultPlan(seed=5).wire(drop=0.5)
                .freeze_tile("app", at=100, duration=200))
        design = UdpEchoDesign(udp_port=7, fault_plan=plan)
        design.add_client(CLIENT_IP, CLIENT_MAC)
        tracer = attach_tracer(design, Tracer())
        inject_echoes(design, count=10)
        design.sim.run(3000)
        return design, tracer

    def test_tracer_records_fault_events(self):
        design, tracer = self._faulty_run()
        kinds = {event.kind for event in tracer.faults}
        assert "wire.drop" in kinds
        assert "tile.freeze" in kinds and "tile.thaw" in kinds
        # Perfetto export: fault instants live on their own track.
        events = chrome_trace_events(tracer)
        instants = [e for e in events if e.get("ph") == "i"]
        assert any("wire.drop" in e["name"] for e in instants)

    def test_counters_and_report_surface_faults(self):
        design, _tracer = self._faulty_run()
        counters = design_counters(design)
        assert counters["faults"] == dict(design.fault_engine.counters)
        report = design_report(design)
        assert "fault injections:" in report
        assert "wire.drop" in report

    def test_no_fault_section_without_plan(self):
        design, _sink = echo_design(None)
        design.sim.run(100)
        assert "faults" not in design_counters(design)
        assert "fault injections:" not in design_report(design)


class TestWallClockBudget:
    def test_budget_raises(self):
        design, _sink = echo_design(None, kernel="naive")
        with pytest.raises(WallClockBudgetExceeded):
            design.sim.run_until(lambda: False, max_cycles=10**9,
                                 wall_clock_budget_s=0.05)

    def test_budget_is_a_timeout(self):
        # Callers already catching TimeoutError keep working.
        assert issubclass(WallClockBudgetExceeded, TimeoutError)

    def test_generous_budget_does_not_fire(self):
        design, sink = echo_design(None)
        inject_echoes(design, count=3)
        design.sim.run_until(lambda: sink.count == 3, max_cycles=10_000,
                             wall_clock_budget_s=60.0)
        assert sink.count == 3


class TestTcpUnderLoss:
    def test_full_stream_through_one_percent_loss(self):
        """The acceptance scenario: a pinned seed at 1% wire frame
        loss drops real data segments, and the engines retransmit the
        stream to byte-exact completion."""
        import random

        plan = FaultPlan(seed=3).wire(drop=0.01)
        design = TcpServerDesign(tcp_port=5000, request_size=1024,
                                 fault_plan=plan)
        design.add_client(CLIENT_IP, CLIENT_MAC)
        peer = SoftTcpPeer(design, CLIENT_IP, CLIENT_MAC,
                           design.server_ip, 5000, wire_cycles=50)
        design.sim.add(peer)
        payload = bytes(random.Random(3).randrange(256)
                        for _ in range(131072))
        peer.connect()
        design.sim.run_until(lambda: peer.established,
                             max_cycles=500_000)
        peer.send(payload)
        design.sim.run_until(lambda: len(peer.received) >= len(payload),
                             max_cycles=20_000_000)
        assert bytes(peer.received) == payload
        assert design.fault_engine.counters["wire.drop"] >= 1
        # The loss hit a data segment, not just a coverable ACK.
        assert peer.retransmits >= 1


class TestVrRecovery:
    def _experiment(self, seed=0xBEE5):
        from repro.apps.vr.cluster import VrExperiment

        plan = FaultPlan(seed=seed).vr_freeze("leader", shard=0,
                                              at_s=0.05, duration_s=1.0)
        experiment = VrExperiment(
            shards=2, witness_kind="fpga", n_clients=4, seed=seed,
            view_change_timeout_s=0.01, client_retry_s=0.01)
        apply_vr_faults(experiment, plan)
        result = experiment.run(duration_s=0.3, warmup_s=0.02)
        return experiment, result

    def test_view_change_completes_around_frozen_leader(self):
        experiment, result = self._experiment()
        assert experiment.fault_log == [(0.05, "leader", 0, 1.0)]
        assert experiment.view_changes == 1
        time_s, shard, view = experiment.view_change_log[0]
        assert shard == 0 and view == 1 and time_s > 0.05
        # The promoted leader serves the rest of the run.
        assert experiment.leaders[0].view == 1
        assert experiment.leaders[0].completed > 0
        assert result.throughput_kops > 0
        # Clients survived the outage by retrying.
        assert sum(c.retries for c in experiment.clients) > 0

    def test_recovery_is_deterministic(self):
        _exp_a, result_a = self._experiment()
        exp_a, _ = _exp_a, None
        exp_b, result_b = self._experiment()
        assert exp_a.view_change_log == exp_b.view_change_log
        assert result_a.throughput_kops == result_b.throughput_kops
        assert result_a.latencies_us == result_b.latencies_us

    def test_unfrozen_cluster_has_no_view_change(self):
        from repro.apps.vr.cluster import VrExperiment

        experiment = VrExperiment(
            shards=2, witness_kind="fpga", n_clients=4, seed=0xBEE5,
            view_change_timeout_s=0.01, client_retry_s=0.01)
        experiment.run(duration_s=0.2, warmup_s=0.02)
        assert experiment.view_changes == 0
