"""NoC soak tests: randomised traffic, conservation, and fairness,
plus a seeded fault-soak crossing kernels and mesh backends."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.noc import Mesh, NocMessage
from repro.sim.kernel import CycleSimulator


class Drain:
    def __init__(self, port):
        self.port = port
        self.messages = []

    def step(self, cycle):
        message = self.port.receive()
        if message is not None:
            self.messages.append(message)

    def commit(self):
        pass


class TestNocSoak:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_random_traffic_is_conserved(self, data):
        """Whatever random (src, dst, size) workload is injected, every
        message arrives exactly once, intact, at its destination, in
        per-pair order — nothing lost, duplicated, or misrouted."""
        width = data.draw(st.integers(2, 4))
        height = data.draw(st.integers(1, 4))
        coords = [(x, y) for x in range(width) for y in range(height)]
        sim = CycleSimulator()
        mesh = Mesh(width, height)
        ports = {coord: mesh.attach(coord) for coord in coords}
        mesh.register(sim)
        drains = {coord: Drain(port) for coord, port in ports.items()}
        sim.add_all(drains.values())

        n_messages = data.draw(st.integers(1, 40))
        sent = []
        for index in range(n_messages):
            src = data.draw(st.sampled_from(coords))
            dst = data.draw(st.sampled_from(
                [c for c in coords if c != src]))
            size = data.draw(st.integers(0, 700))
            payload = bytes([index % 251]) * size
            ports[src].send(NocMessage(dst=dst, src=src,
                                       metadata=(src, index),
                                       data=payload))
            sent.append((src, dst, index, payload))

        sim.run_until(
            lambda: sum(len(d.messages) for d in drains.values())
            == n_messages,
            max_cycles=60_000,
        )
        # Exactly-once, intact, correctly routed.
        received = {}
        for dst, drain in drains.items():
            for message in drain.messages:
                src, index = message.metadata
                assert (src, index) not in received
                received[(src, index)] = (dst, message.data)
        for src, dst, index, payload in sent:
            got_dst, got_payload = received[(src, index)]
            assert got_dst == dst
            assert got_payload == payload
        # Per (src, dst) pair, arrival order == send order.
        for dst, drain in drains.items():
            per_src = {}
            for message in drain.messages:
                src, index = message.metadata
                per_src.setdefault(src, []).append(index)
            sent_order = {}
            for src, sdst, index, _ in sent:
                if sdst == dst:
                    sent_order.setdefault(src, []).append(index)
            assert per_src == sent_order

    def test_round_robin_arbitration_is_fair(self):
        """Two senders contending for one path share it ~evenly."""
        sim = CycleSimulator()
        mesh = Mesh(3, 2)
        a = mesh.attach((0, 0))
        b = mesh.attach((0, 1))
        sink_port = mesh.attach((2, 0), eject_depth=8)
        mesh.register(sim)
        drain = Drain(sink_port)
        sim.add(drain)
        for i in range(40):
            a.send(NocMessage(dst=(2, 0), src=(0, 0),
                              metadata=("a", i), data=bytes(256)))
            b.send(NocMessage(dst=(2, 0), src=(0, 1),
                              metadata=("b", i), data=bytes(256)))
        sim.run_until(lambda: len(drain.messages) == 80,
                      max_cycles=30_000)
        # Interleaving: in any window of 16 arrivals, both senders
        # appear (no starvation).
        tags = [m.metadata[0] for m in drain.messages]
        for start in range(0, 80 - 16, 8):
            window = set(tags[start:start + 16])
            assert window == {"a", "b"}


class TestFaultSoak:
    """Seeded chaos soak across every (kernel, mesh backend) combo.

    The fault hooks live at shared boundaries — the inject wire and
    the tile-side LocalPort — so an identical FaultPlan must produce
    a bit-identical run (egress frames, tile counters, fault log)
    whether the mesh is the object graph or the flat array core, and
    whether the kernel sweeps every component or idle-skips.
    """

    COMBOS = (
        ("naive", "object"),
        ("scheduled", "object"),
        ("naive", "flat"),
        ("scheduled", "flat"),
    )

    @pytest.mark.parametrize("seed", [11, 29, 47])
    def test_identical_faulty_runs_across_combos(self, seed):
        from repro.designs import FrameSink, UdpEchoDesign
        from repro.faults import FaultPlan
        from repro.noc.message import reset_id_counters
        from repro.packet import (
            IPv4Address,
            MacAddress,
            build_ipv4_udp_frame,
        )
        from repro.telemetry import design_counters

        client_ip = IPv4Address("10.0.0.1")
        client_mac = MacAddress("02:00:00:00:00:01")

        def plan():
            return (FaultPlan(seed=seed)
                    .wire(drop=0.15, corrupt=0.1, duplicate=0.1,
                          reorder=0.15, delay=0.25)
                    .freeze_tile("app", at=400, duration=600)
                    .stall_link((3, 0), at=2000, duration=300)
                    .corrupt_flits(0.1, coords=[(2, 0)]))

        def traffic(design):
            # Seeded, bursty, variable-size traffic — same for every
            # combo because the rng is rebuilt from the seed.
            rng = random.Random(seed)
            cycle = 1
            for _ in range(40):
                payload = bytes(rng.randrange(256)
                                for _ in range(rng.randrange(8, 600)))
                frame = build_ipv4_udp_frame(
                    client_mac, design.server_mac, client_ip,
                    design.server_ip, 5555, 7, payload)
                design.inject(frame, cycle)
                cycle += rng.choice((1, 3, 40, 200))

        def run(kernel, backend):
            reset_id_counters()
            design = UdpEchoDesign(udp_port=7, kernel=kernel,
                                   mesh_backend=backend,
                                   fault_plan=plan())
            design.add_client(client_ip, client_mac)
            sink = FrameSink(design.eth_tx)
            design.sim.add(sink)
            traffic(design)
            design.sim.run(15_000)
            assert sink.malformed == 0
            counters = design_counters(design)
            return {
                "frames": list(sink.frames),
                "tiles": counters["tiles"],
                "total_flits": counters["total_flits"],
                "faults": counters["faults"],
                "fault_log": list(design.fault_engine.log),
            }

        reference = run(*self.COMBOS[0])
        for combo in self.COMBOS[1:]:
            candidate = run(*combo)
            for key in reference:
                assert reference[key] == candidate[key], (
                    f"fault-soak divergence in {key!r} under "
                    f"kernel={combo[0]!r} mesh_backend={combo[1]!r}"
                )
