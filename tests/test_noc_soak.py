"""NoC soak tests: randomised traffic, conservation, and fairness."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.noc import Mesh, NocMessage
from repro.sim.kernel import CycleSimulator


class Drain:
    def __init__(self, port):
        self.port = port
        self.messages = []

    def step(self, cycle):
        message = self.port.receive()
        if message is not None:
            self.messages.append(message)

    def commit(self):
        pass


class TestNocSoak:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_random_traffic_is_conserved(self, data):
        """Whatever random (src, dst, size) workload is injected, every
        message arrives exactly once, intact, at its destination, in
        per-pair order — nothing lost, duplicated, or misrouted."""
        width = data.draw(st.integers(2, 4))
        height = data.draw(st.integers(1, 4))
        coords = [(x, y) for x in range(width) for y in range(height)]
        sim = CycleSimulator()
        mesh = Mesh(width, height)
        ports = {coord: mesh.attach(coord) for coord in coords}
        mesh.register(sim)
        drains = {coord: Drain(port) for coord, port in ports.items()}
        sim.add_all(drains.values())

        n_messages = data.draw(st.integers(1, 40))
        sent = []
        for index in range(n_messages):
            src = data.draw(st.sampled_from(coords))
            dst = data.draw(st.sampled_from(
                [c for c in coords if c != src]))
            size = data.draw(st.integers(0, 700))
            payload = bytes([index % 251]) * size
            ports[src].send(NocMessage(dst=dst, src=src,
                                       metadata=(src, index),
                                       data=payload))
            sent.append((src, dst, index, payload))

        sim.run_until(
            lambda: sum(len(d.messages) for d in drains.values())
            == n_messages,
            max_cycles=60_000,
        )
        # Exactly-once, intact, correctly routed.
        received = {}
        for dst, drain in drains.items():
            for message in drain.messages:
                src, index = message.metadata
                assert (src, index) not in received
                received[(src, index)] = (dst, message.data)
        for src, dst, index, payload in sent:
            got_dst, got_payload = received[(src, index)]
            assert got_dst == dst
            assert got_payload == payload
        # Per (src, dst) pair, arrival order == send order.
        for dst, drain in drains.items():
            per_src = {}
            for message in drain.messages:
                src, index = message.metadata
                per_src.setdefault(src, []).append(index)
            sent_order = {}
            for src, sdst, index, _ in sent:
                if sdst == dst:
                    sent_order.setdefault(src, []).append(index)
            assert per_src == sent_order

    def test_round_robin_arbitration_is_fair(self):
        """Two senders contending for one path share it ~evenly."""
        sim = CycleSimulator()
        mesh = Mesh(3, 2)
        a = mesh.attach((0, 0))
        b = mesh.attach((0, 1))
        sink_port = mesh.attach((2, 0), eject_depth=8)
        mesh.register(sim)
        drain = Drain(sink_port)
        sim.add(drain)
        for i in range(40):
            a.send(NocMessage(dst=(2, 0), src=(0, 0),
                              metadata=("a", i), data=bytes(256)))
            b.send(NocMessage(dst=(2, 0), src=(0, 1),
                              metadata=("b", i), data=bytes(256)))
        sim.run_until(lambda: len(drain.messages) == 80,
                      max_cycles=30_000)
        # Interleaving: in any window of 16 arrivals, both senders
        # appear (no starvation).
        tags = [m.metadata[0] for m in drain.messages]
        for start in range(0, 80 - 16, 8):
            window = set(tags[start:start + 16])
            assert window == {"a", "b"}
