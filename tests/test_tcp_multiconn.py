"""Multi-connection TCP bandwidth (section VII-D).

The paper: "our TCP engine is designed to only achieve full bandwidth
across multiple simultaneous connections."  One flow is bound by its
flow-state read-modify-write round-trip (~94 cycles/segment); flows
interleave in the pipelined engine at the initiation interval, so
aggregate send rate scales with connection count up to the pipeline
limit.
"""

import pytest

from repro import params
from repro.designs.tcp_stack import TcpServerDesign
from repro.packet import IPv4Address, MacAddress
from repro.tcp.app import TcpSourceAppTile
from repro.tcp.peer import PeerNetwork, SoftTcpPeer

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

MSS = 1024


def aggregate_send_kreqs(n_connections: int,
                         measure_cycles: int = 60_000) -> float:
    design = TcpServerDesign(
        tcp_port=5000, app_tile_cls=TcpSourceAppTile, request_size=64,
        mss=MSS, chunk_size=16384, line_rate_bytes_per_cycle=None,
        max_flows=max(8, n_connections),
    )
    design.add_client(CLIENT_IP, CLIENT_MAC)
    network = PeerNetwork(design)
    design.sim.add(network)
    peers = []
    for index in range(n_connections):
        peer = SoftTcpPeer(design, CLIENT_IP, CLIENT_MAC,
                           design.server_ip, 5000,
                           src_port=42000 + index, wire_cycles=100,
                           service_cycles=1, window=60_000,
                           iss=5000 + 313 * index)
        network.register(peer)
        design.sim.add(peer)
        peer.connect()
        peers.append(peer)
    design.sim.run(60_000)  # warm up: handshakes + slow ramp
    base = sum(len(p.received) for p in peers)
    start = design.sim.cycle
    design.sim.run(measure_cycles)
    received = sum(len(p.received) for p in peers) - base
    elapsed = (design.sim.cycle - start) * params.CYCLE_TIME_S
    return received / MSS / elapsed / 1e3


class TestMultiConnectionBandwidth:
    def test_single_connection_is_state_latency_bound(self):
        rate = aggregate_send_kreqs(1)
        expected = 250e3 / params.TCP_ENGINE_PER_PACKET_CYCLES
        assert rate == pytest.approx(expected, rel=0.08)

    def test_four_connections_scale_aggregate(self):
        one = aggregate_send_kreqs(1)
        four = aggregate_send_kreqs(4)
        assert four > 3.2 * one  # near-linear up to the pipeline II

    def test_pipeline_caps_aggregate(self):
        """Beyond occupancy/II connections, the pipeline II is the
        limit, not connection count."""
        eight = aggregate_send_kreqs(8)
        ii_cap = 250e3 / max(params.TCP_ENGINE_PIPELINE_II_CYCLES,
                             2 + MSS // 64)
        assert eight <= ii_cap * 1.1
        assert eight > 4 * 250e3 / params.TCP_ENGINE_PER_PACKET_CYCLES

    def test_each_connection_receives_its_own_stream(self):
        """Streams never cross between connections."""
        design = TcpServerDesign(
            tcp_port=5000, app_tile_cls=TcpSourceAppTile,
            request_size=64, mss=256, chunk_size=4096,
            line_rate_bytes_per_cycle=None, max_flows=4,
        )
        design.add_client(CLIENT_IP, CLIENT_MAC)
        network = PeerNetwork(design)
        design.sim.add(network)
        peers = []
        for index in range(3):
            peer = SoftTcpPeer(design, CLIENT_IP, CLIENT_MAC,
                               design.server_ip, 5000,
                               src_port=43000 + index,
                               wire_cycles=60, service_cycles=1,
                               iss=9000 + 11 * index)
            network.register(peer)
            design.sim.add(peer)
            peer.connect()
            peers.append(peer)
        design.sim.run_until(
            lambda: all(len(p.received) >= 4096 for p in peers),
            max_cycles=2_000_000,
        )
        # The source app streams zero bytes on every flow; receiving
        # anything else would mean cross-flow corruption.
        for peer in peers:
            assert set(peer.received[:4096]) == {0}
