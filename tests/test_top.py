"""Tests for the mesh dashboard's deterministic replay rendering."""

from pathlib import Path

import pytest

from repro.telemetry.export import SnapshotSeries
from repro.tools.top import (
    main,
    mesh_extent,
    render_all,
    render_frame,
    router_activity,
    sparkline,
)

FIXTURE = Path(__file__).parent / "data" / "snapshots_udp_echo.json"


def make_series():
    series = SnapshotSeries(interval=100, design="test")
    series.append({
        "cycle": 100,
        "kernel": {"kernel": "scheduled", "components": 4, "active": 2,
                   "armed_timers": 0, "idle_cycles_skipped": 10,
                   "component_steps": 123},
        "links": {"(0, 0)->east": 40, "(1, 0)->local": 12},
        "busy_routers": 2,
        "total_flits": 52,
        "tiles": {
            "a": {"coord": [0, 0], "msgs_in": 5, "msgs_out": 5,
                  "drops": 0, "rx_ready": 0, "buffered_flits": 0,
                  "eject_depth": 1, "eject_hwm": 2, "tx_backlog": 0,
                  "tx_hwm": 1},
            "b": {"coord": [1, 0], "msgs_in": 4, "msgs_out": 4,
                  "drops": 1, "rx_ready": 0, "buffered_flits": 0,
                  "eject_depth": 0, "eject_hwm": 1, "tx_backlog": 2,
                  "tx_hwm": 3},
        },
        "latency": {"completed": 3, "window_p50": 80.0,
                    "window_max": 95, "p50": 80.0, "p99": 95.0,
                    "p999": 95.0, "last_transit": 95},
        "faults": {"wire.drop": 2},
    })
    return series


class TestRenderHelpers:
    def test_mesh_extent_from_tiles_and_links(self):
        snapshot = make_series().snapshots[0]
        assert mesh_extent(snapshot) == (2, 1)

    def test_router_activity_sums_outgoing(self):
        snapshot = make_series().snapshots[0]
        assert router_activity(snapshot) == {(0, 0): 40, (1, 0): 12}

    def test_sparkline_shape(self):
        assert sparkline([]) == ""
        assert sparkline([None, None]) == ""
        line = sparkline([0, 1, 5, 10])
        assert len(line) == 4
        assert line[0] == " "
        assert line[-1] == "█"


class TestDeterminism:
    def test_same_series_same_frame(self):
        series = make_series()
        assert render_frame(series, 0) == render_frame(series, 0)

    def test_replay_fixture_is_stable(self):
        """The CI contract: replaying a recorded file renders
        byte-identical frames, load after load."""
        first = render_all(SnapshotSeries.load(str(FIXTURE)))
        second = render_all(SnapshotSeries.load(str(FIXTURE)))
        assert first == second
        assert "repro.top — udp_echo" in first

    def test_frame_mentions_all_tiles_and_faults(self):
        text = render_frame(make_series(), 0)
        assert "a " in text and "b " in text
        assert "wire.drop=2" in text
        assert "last transit=95" in text
        assert "kernel[scheduled]" in text


class TestCli:
    def test_replay_renders(self, capsys):
        assert main(["--replay", str(FIXTURE), "--plain"]) == 0
        out = capsys.readouterr().out
        assert out.count("repro.top") == \
            len(SnapshotSeries.load(str(FIXTURE)).snapshots)

    def test_replay_single_frame(self, capsys):
        assert main(["--replay", str(FIXTURE), "--frame", "-1"]) == 0
        assert capsys.readouterr().out.count("repro.top") == 1

    def test_replay_frame_out_of_range(self, capsys):
        assert main(["--replay", str(FIXTURE), "--frame", "999"]) == 1

    def test_replay_missing_file(self):
        assert main(["--replay", "/nonexistent.json"]) == 1

    def test_design_required_without_replay(self):
        with pytest.raises(SystemExit):
            main([])

    def test_live_plain_smoke(self, capsys, tmp_path):
        save = tmp_path / "live.json"
        assert main(["udp_echo", "--plain", "--cycles", "1200",
                     "--interval", "400", "--save", str(save)]) == 0
        assert save.exists()
        loaded = SnapshotSeries.load(str(save))
        assert len(loaded.snapshots) >= 2
