"""Tests for the section VII-I scaled design (28 tiles, 22 apps)."""

import itertools

import pytest

from repro import params
from repro.analysis import analyze_chains
from repro.designs import FrameSink, ScaledEchoDesign
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)
from repro.resources import max_frequency_mhz

CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def saturating_run(design, n_flows=60, cycles=15_000):
    ips = [IPv4Address(f"10.0.2.{i}") for i in range(1, n_flows + 1)]
    for ip in ips:
        design.add_client(ip, CLIENT_MAC)
    frames = [
        build_ipv4_udp_frame(CLIENT_MAC, design.server_mac, ip,
                             design.server_ip, 5000 + j, 7, bytes(64))
        for j, ip in enumerate(ips)
    ]
    cycler = itertools.cycle(frames)

    class Source:
        def __init__(self):
            self._free = 0

        def step(self, cycle):
            if cycle >= self._free:
                design.inject(next(cycler), cycle)
                self._free = cycle + 2

        def commit(self):
            pass

    sink = FrameSink(design.eth_tx, keep_frames=False)
    design.sim.add(Source())
    design.sim.add(sink)
    design.sim.run(cycles)
    return sink


class TestScaledEcho:
    def test_paper_configuration_builds(self):
        """22 app tiles + 6 stack tiles = the paper's 28-tile design."""
        design = ScaledEchoDesign(n_apps=22)
        assert design.total_tiles == params.MAX_PLACEABLE_TILES
        assert max_frequency_mhz(design.total_tiles) >= 250.0

    def test_all_chains_deadlock_free(self):
        design = ScaledEchoDesign(n_apps=22)
        assert len(design.chains) == 22
        assert analyze_chains(design.chains,
                              design.tile_coords) is None

    def test_apps_share_the_load(self):
        design = ScaledEchoDesign(n_apps=22)
        sink = saturating_run(design, n_flows=120)
        assert sink.count > 500
        served = [app.requests for app in design.apps]
        # Flow hashing spreads 120 flows across nearly every replica.
        assert sum(1 for count in served if count > 0) >= 20

    def test_flows_are_sticky(self):
        """A flow always lands on the same app tile (flow hashing)."""
        design = ScaledEchoDesign(n_apps=8)
        ip = IPv4Address("10.0.2.1")
        design.add_client(ip, CLIENT_MAC)
        frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                     ip, design.server_ip, 5555, 7,
                                     bytes(64))
        sink = FrameSink(design.eth_tx, keep_frames=False)
        design.sim.add(sink)
        for _ in range(12):
            design.inject(frame, design.sim.cycle)
        design.sim.run_until(lambda: sink.count >= 12,
                             max_cycles=10_000)
        served = sorted(app.requests for app in design.apps)
        assert served == [0] * 7 + [12]

    def test_replies_are_correct(self):
        design = ScaledEchoDesign(n_apps=5)
        ip = IPv4Address("10.0.2.9")
        design.add_client(ip, CLIENT_MAC)
        frame = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                     ip, design.server_ip, 4141, 7,
                                     b"scaled out")
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        design.inject(frame, 0)
        design.sim.run_until(lambda: sink.count >= 1, max_cycles=5000)
        reply = parse_frame(sink.frames[0][0])
        assert reply.payload == b"scaled out"
        assert reply.udp.dst_port == 4141

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            ScaledEchoDesign(n_apps=23)
        with pytest.raises(ValueError):
            ScaledEchoDesign(n_apps=0)
