"""Tests for the XML design tooling: parse, validate, generate, LoC."""

import pytest

from repro.config import (
    ChainSpec,
    DesignSpec,
    DestSpec,
    TileSpec,
    ValidationError,
    build_design,
    design_from_xml,
    design_to_xml,
    generate_top_level,
    instantiation_loc,
    validate,
)
from repro.config.examples import UDP_ECHO_XML
from repro.analysis.deadlock import DeadlockError
from repro.designs import FrameSink
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


class TestXmlRoundtrip:
    def test_parse_udp_echo(self):
        design = design_from_xml(UDP_ECHO_XML)
        assert design.name == "udp_echo"
        assert (design.width, design.height) == (4, 2)
        assert len(design.tiles) == 7
        assert design.tile("eth_rx").dests[0].parsed_key() == 0x0800
        assert design.tile("ip_rx").dests[0].parsed_key() == 17
        assert design.tile("udp_rx").dests[0].parsed_key() == 7
        assert design.chains[0].tiles[0] == "eth_rx"

    def test_roundtrip_through_text(self):
        design = design_from_xml(UDP_ECHO_XML)
        text = design_to_xml(design)
        again = design_from_xml(text)
        assert again.coords() == design.coords()
        assert [t.type for t in again.tiles] == \
            [t.type for t in design.tiles]

    def test_rejects_non_design_root(self):
        with pytest.raises(ValueError):
            design_from_xml("<chip/>")

    def test_rejects_tile_without_name(self):
        with pytest.raises(ValueError, match="name"):
            design_from_xml(
                '<design name="x" width="1" height="1">'
                "<tile><type>ip_rx</type><x>0</x><y>0</y></tile>"
                "</design>"
            )


class TestValidation:
    def spec(self, **overrides):
        design = DesignSpec(name="t", width=2, height=2)
        design.tiles = [
            TileSpec(name="a", type="ip_rx", x=0, y=0),
            TileSpec(name="b", type="ip_tx", x=1, y=0),
        ]
        for key, value in overrides.items():
            setattr(design, key, value)
        return design

    def test_valid_design_reports_empty_tiles(self):
        report = validate(self.spec())
        assert report.empty_coords == [(0, 1), (1, 1)]

    def test_duplicate_coordinates_rejected(self):
        design = self.spec()
        design.tiles[1].x = 0
        with pytest.raises(ValidationError, match="share coordinates"):
            validate(design)

    def test_out_of_range_rejected(self):
        design = self.spec()
        design.tiles[1].x = 9
        with pytest.raises(ValidationError, match="outside"):
            validate(design)

    def test_duplicate_names_rejected(self):
        design = self.spec()
        design.tiles[1].name = "a"
        with pytest.raises(ValidationError, match="duplicate"):
            validate(design)

    def test_unknown_dest_rejected(self):
        design = self.spec()
        design.tiles[0].dests = [DestSpec(key="default",
                                          targets=["ghost"])]
        with pytest.raises(ValidationError, match="unknown tile"):
            validate(design)

    def test_chain_with_unknown_tile_rejected(self):
        design = self.spec()
        design.chains = [ChainSpec(tiles=["a", "ghost"])]
        with pytest.raises(ValidationError):
            validate(design)

    def test_problems_accumulate(self):
        design = self.spec()
        design.tiles[1].name = "a"
        design.tiles[1].x = 9
        with pytest.raises(ValidationError) as excinfo:
            validate(design)
        assert len(excinfo.value.problems) == 2


class TestValidationEdgeCases:
    """Degenerate-but-legal and corner-case topologies."""

    def test_one_by_n_mesh_valid(self):
        design = DesignSpec(name="line", width=1, height=4)
        design.tiles = [
            TileSpec(name="a", type="ip_rx", x=0, y=0),
            TileSpec(name="b", type="ip_tx", x=0, y=3),
        ]
        report = validate(design)
        assert report.empty_coords == [(0, 1), (0, 2)]

    def test_n_by_one_mesh_rejects_out_of_range_y(self):
        design = DesignSpec(name="row", width=4, height=1)
        design.tiles = [TileSpec(name="a", type="ip_rx", x=0, y=1)]
        with pytest.raises(ValidationError, match="outside"):
            validate(design)

    def test_one_by_one_mesh_single_tile(self):
        design = DesignSpec(name="dot", width=1, height=1)
        design.tiles = [TileSpec(name="only", type="ip_rx", x=0, y=0)]
        report = validate(design)
        assert report.empty_coords == []

    def test_duplicate_coords_distinct_names_lists_both(self):
        design = DesignSpec(name="dup", width=2, height=2)
        design.tiles = [
            TileSpec(name="first", type="ip_rx", x=1, y=1),
            TileSpec(name="second", type="ip_tx", x=1, y=1),
        ]
        with pytest.raises(ValidationError,
                           match="share coordinates") as excinfo:
            validate(design)
        # Both offending tiles are named so the fix is obvious.
        assert "first" in str(excinfo.value)
        assert "second" in str(excinfo.value)

    def test_corner_empty_tiles_autogenerated(self):
        """A lone centre tile leaves all four corners (and edges) to
        the empty-tile generator, in row-major order."""
        design = DesignSpec(name="corners", width=3, height=3)
        design.tiles = [TileSpec(name="mid", type="ip_rx", x=1, y=1)]
        report = validate(design)
        everything = {(x, y) for x in range(3) for y in range(3)}
        assert set(report.empty_coords) == everything - {(1, 1)}
        assert report.empty_coords[0] == (0, 0)
        assert report.empty_coords[-1] == (2, 2)

    def test_no_chains_is_a_warning_not_an_error(self):
        design = DesignSpec(name="quiet", width=2, height=1)
        design.tiles = [TileSpec(name="a", type="ip_rx", x=0, y=0)]
        report = validate(design)
        assert any("no chains declared" in w for w in report.warnings)

    def test_report_carries_findings(self):
        """The report exposes the underlying BHV findings so callers
        can act on codes rather than parsing message text."""
        design = DesignSpec(name="quiet", width=2, height=1)
        design.tiles = [TileSpec(name="a", type="ip_rx", x=0, y=0)]
        report = validate(design)
        assert [f.code for f in report.findings] == ["BHV122"]


class TestGeneratedDesign:
    def test_builds_and_echoes(self):
        """The XML-generated design behaves like the handwritten one."""
        spec = design_from_xml(UDP_ECHO_XML)
        design = build_design(spec)
        design.add_neighbor(CLIENT_IP, CLIENT_MAC)
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        frame = build_ipv4_udp_frame(
            CLIENT_MAC, MacAddress("02:be:e0:00:00:01"), CLIENT_IP,
            IPv4Address("10.0.0.10"), 5555, 7, b"from-xml",
        )
        design.inject(frame, 0)
        design.sim.run_until(lambda: sink.count >= 1, max_cycles=2000)
        assert parse_frame(sink.frames[0][0]).payload == b"from-xml"

    def test_deadlocky_layout_rejected_at_build(self):
        """Building the Fig 5a placement fails the compile-time check."""
        spec = design_from_xml(UDP_ECHO_XML)
        # Swap ip_rx and udp_rx coordinates: eth->ip now crosses udp.
        spec.tile("ip_rx").x, spec.tile("udp_rx").x = 2, 1
        with pytest.raises(DeadlockError):
            build_design(spec)

    def test_unknown_type_rejected(self):
        spec = DesignSpec(name="t", width=1, height=1, tiles=[
            TileSpec(name="a", type="quantum_tile", x=0, y=0),
        ])
        with pytest.raises(KeyError, match="quantum_tile"):
            build_design(spec)

    def test_replicated_targets_load_balance(self):
        spec = design_from_xml(UDP_ECHO_XML)
        design = build_design(spec)
        table = design.tiles["udp_rx"].next_hop
        table.set_entry(7, [(3, 0), (3, 1)])
        picks = {table.lookup(7, flow_key=(0, 0, p, 7))
                 for p in range(50)}
        assert picks == {(3, 0), (3, 1)}


class TestTopLevelGeneration:
    def test_wires_and_instances_present(self):
        spec = design_from_xml(UDP_ECHO_XML)
        text = generate_top_level(spec)
        assert "wire [511:0] noc_0_0__to__1_0;" in text
        assert "eth_rx_inst" in text
        assert "udp_tx_inst" in text
        # Empty tile auto-generated at the unoccupied (3, 1).
        assert "empty_3_1" in text

    def test_wire_count_matches_mesh(self):
        spec = design_from_xml(UDP_ECHO_XML)
        text = generate_top_level(spec)
        wires = [line for line in text.splitlines()
                 if line.startswith("wire")]
        # 4x2 mesh: horizontal 3*2 pairs + vertical 4*1 pairs, 2 dirs.
        assert len(wires) == (3 * 2 + 4 * 1) * 2

    def test_edge_ports_tied_off(self):
        spec = design_from_xml(UDP_ECHO_XML)
        text = generate_top_level(spec)
        assert "512'b0" in text


class TestLocAccounting:
    def test_instantiation_loc_shape(self):
        """Adding a tile costs tens of XML/top-level lines (Table VI's
        point: instantiating a service instance is cheap)."""
        spec = design_from_xml(UDP_ECHO_XML)
        loc = instantiation_loc(spec, "app")
        assert 5 <= loc.xml_declaration <= 30
        assert loc.xml_destination == 5   # one <dest> block in udp_rx
        assert 10 <= loc.top_level <= 20
        assert loc.xml_total == loc.xml_declaration + 5
