"""Tests for the VR consensus system: witness protocol, hardware tile,
KV workload, and the event-level cluster."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.vr.cluster import VrExperiment
from repro.apps.vr.kv import KvOp, KvStore, KvWorkload
from repro.apps.vr.tile import (
    MSG_NACK,
    MSG_PREPARE,
    MSG_PREPARE_OK,
    PrepareWire,
)
from repro.apps.vr.witness import WitnessDecision, WitnessState
from repro.designs import FrameSink
from repro.designs.vr_design import VrWitnessDesign
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)
from repro.sim.rng import SeededStreams

LEADER_IP = IPv4Address("10.0.0.2")
LEADER_MAC = MacAddress("02:00:00:00:00:02")


class TestWitnessState:
    def test_in_order_accepts(self):
        state = WitnessState()
        for opnum in (1, 2, 3):
            assert state.handle_prepare(0, opnum, b"d") == \
                WitnessDecision.ACCEPT
        assert state.last_opnum == 3
        assert state.accepted == 3

    def test_duplicate_reacked(self):
        """Retransmissions get PrepareOK again (VR over UDP)."""
        state = WitnessState()
        state.handle_prepare(0, 1, b"d")
        assert state.handle_prepare(0, 1, b"d") == \
            WitnessDecision.DUPLICATE
        assert state.last_opnum == 1

    def test_gap_rejected(self):
        state = WitnessState()
        state.handle_prepare(0, 1, b"d")
        assert state.handle_prepare(0, 3, b"d") == WitnessDecision.GAP
        assert state.last_opnum == 1  # nothing was logged

    def test_stale_view_rejected(self):
        """A deposed leader cannot get its ops verified."""
        state = WitnessState()
        state.handle_prepare(5, 1, b"d")
        assert state.handle_prepare(4, 2, b"d") == \
            WitnessDecision.STALE_VIEW

    def test_new_view_adopted(self):
        state = WitnessState()
        state.handle_prepare(0, 1, b"d")
        assert state.handle_prepare(7, 2, b"d") == \
            WitnessDecision.ACCEPT
        assert state.view == 7

    @given(ops=st.lists(st.integers(1, 30), min_size=1, max_size=60))
    @settings(max_examples=30)
    def test_log_is_always_gapless(self, ops):
        """Property: whatever arrival order, the log stays contiguous."""
        state = WitnessState()
        for opnum in ops:
            state.handle_prepare(0, opnum, b"d")
        logged = [opnum for opnum, _ in state.log]
        assert logged == list(range(1, state.last_opnum + 1))


class TestWireFormat:
    def test_roundtrip(self):
        wire = PrepareWire(msg_type=MSG_PREPARE, view=3, opnum=12345,
                           shard=2, digest=b"12345678")
        assert PrepareWire.unpack(wire.pack()) == wire

    def test_short_message_rejected(self):
        with pytest.raises(ValueError):
            PrepareWire.unpack(b"\x01\x02")


class TestKv:
    def test_store_get_put(self):
        store = KvStore()
        assert store.execute(KvOp("get", b"k")) is None
        store.execute(KvOp("put", b"k", b"v"))
        assert store.execute(KvOp("get", b"k")) == b"v"
        assert store.reads == 2 and store.writes == 1

    def test_workload_read_fraction(self):
        rng = SeededStreams(1).stream("w")
        workload = KvWorkload(rng, shards=1)
        ops = [workload.next_op()[1] for _ in range(2000)]
        reads = sum(1 for op in ops if op.kind == "get")
        assert 0.85 <= reads / len(ops) <= 0.95

    def test_workload_shards_balanced(self):
        rng = SeededStreams(1).stream("w")
        workload = KvWorkload(rng, shards=4)
        counts = [0] * 4
        for _ in range(4000):
            shard, _ = workload.next_op()
            counts[shard] += 1
        assert min(counts) > 700  # roughly uniform

    def test_key_value_sizes(self):
        rng = SeededStreams(1).stream("w")
        workload = KvWorkload(rng, shards=1)
        while True:
            _, op = workload.next_op()
            if op.kind == "put":
                break
        assert len(op.key) == 64 and len(op.value) == 64


def witness_design(shards=2):
    design = VrWitnessDesign(shards=shards,
                             line_rate_bytes_per_cycle=None)
    design.add_client(LEADER_IP, LEADER_MAC)
    return design


def prepare_frame(design, shard, view, opnum):
    wire = PrepareWire(msg_type=MSG_PREPARE, view=view, opnum=opnum,
                       shard=shard, digest=b"deadbeef")
    return build_ipv4_udp_frame(
        LEADER_MAC, design.server_mac, LEADER_IP, design.server_ip,
        7777, design.shard_port(shard), wire.pack(),
    )


class TestVrWitnessTile:
    def run_one(self, design, frame, sink):
        before = sink.count
        design.inject(frame, design.sim.cycle)
        design.sim.run_until(lambda: sink.count > before,
                             max_cycles=5000)
        reply = parse_frame(sink.frames[-1][0])
        return PrepareWire.unpack(reply.payload)

    def test_prepare_gets_prepare_ok(self):
        design = witness_design()
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        reply = self.run_one(design, prepare_frame(design, 0, 0, 1),
                             sink)
        assert reply.msg_type == MSG_PREPARE_OK
        assert reply.opnum == 1

    def test_gap_gets_nack(self):
        design = witness_design()
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        self.run_one(design, prepare_frame(design, 0, 0, 1), sink)
        reply = self.run_one(design, prepare_frame(design, 0, 0, 5),
                             sink)
        assert reply.msg_type == MSG_NACK

    def test_shards_are_isolated(self):
        """Each shard's op sequence lives on its own tile."""
        design = witness_design(shards=2)
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        self.run_one(design, prepare_frame(design, 0, 0, 1), sink)
        reply = self.run_one(design, prepare_frame(design, 1, 0, 1),
                             sink)
        assert reply.msg_type == MSG_PREPARE_OK
        assert design.witnesses[0].state.last_opnum == 1
        assert design.witnesses[1].state.last_opnum == 1

    def test_witness_latency_under_microsecond(self):
        """The hardware witness answers within ~0.5 us of frame entry —
        the determinism that drives Fig 11's improvement."""
        design = witness_design()
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        self.run_one(design, prepare_frame(design, 0, 0, 1), sink)
        assert design.eth_tx.last_transit_cycles is not None
        assert design.eth_tx.last_transit_cycles * 4e-9 < 0.6e-6


class TestVrCluster:
    def run_point(self, kind, shards=1, clients=4, duration=0.2):
        return VrExperiment(shards=shards, witness_kind=kind,
                            n_clients=clients).run(duration_s=duration)

    def test_operations_complete(self):
        result = self.run_point("cpu")
        assert result.throughput_kops > 5
        assert result.median_latency_us > 0
        assert result.p99_latency_us >= result.median_latency_us

    def test_replica_converges_to_leader(self):
        """The replica's KV must equal the leader's at quiesce — the
        consensus safety property of the reproduction."""
        experiment = VrExperiment(shards=2, witness_kind="cpu",
                                  n_clients=4)
        result = experiment.run(duration_s=0.1)
        # Let in-flight operations drain.
        experiment.sim.run_until(experiment.sim.now + 0.05)
        for leader, replica in zip(experiment.leaders,
                                   experiment.replicas):
            assert replica.kv.snapshot() == leader.kv.snapshot()

    def test_fpga_witness_beats_cpu_at_knee(self):
        cpu = self.run_point("cpu", clients=4)
        fpga = self.run_point("fpga", clients=4)
        assert fpga.median_latency_us < cpu.median_latency_us
        assert fpga.throughput_kops >= cpu.throughput_kops
        assert fpga.energy_mj_per_op < cpu.energy_mj_per_op / 1.5

    def test_energy_near_table4(self):
        cpu = self.run_point("cpu", clients=4, duration=0.3)
        fpga = self.run_point("fpga", clients=4, duration=0.3)
        assert cpu.energy_mj_per_op == pytest.approx(1.51, rel=0.2)
        assert fpga.energy_mj_per_op == pytest.approx(0.73, rel=0.2)

    def test_throughput_scales_with_shards(self):
        one = self.run_point("fpga", shards=1, clients=4)
        four = self.run_point("fpga", shards=4, clients=16)
        assert four.throughput_kops > 2.5 * one.throughput_kops

    def test_determinism(self):
        a = self.run_point("cpu", duration=0.05)
        b = self.run_point("cpu", duration=0.05)
        assert a.throughput_kops == b.throughput_kops
        assert a.median_latency_us == b.median_latency_us

    def test_bad_witness_kind_rejected(self):
        with pytest.raises(ValueError):
            VrExperiment(shards=1, witness_kind="tpu", n_clients=1)
