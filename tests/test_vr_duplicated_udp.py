"""Tests for the duplicated-protocol-tile VR design (section VII-F:
"we also duplicate protocol tiles to prevent them from becoming a
bottleneck")."""

from repro.apps.vr.tile import MSG_PREPARE, MSG_PREPARE_OK, PrepareWire
from repro.analysis import analyze_chains
from repro.designs import FrameSink, VrWitnessDesign
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)

LEADER_MACS = [MacAddress(f"02:00:00:00:00:0{i}") for i in (2, 3, 4, 5)]
LEADER_IPS = [IPv4Address(f"10.0.0.{i}") for i in (2, 3, 4, 5)]


def make_design():
    design = VrWitnessDesign(shards=4, duplicate_udp=True,
                             line_rate_bytes_per_cycle=None)
    for ip, mac in zip(LEADER_IPS, LEADER_MACS):
        design.add_client(ip, mac)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)
    return design, sink


def prepare_frame(design, leader, shard, opnum):
    wire = PrepareWire(msg_type=MSG_PREPARE, view=0, opnum=opnum,
                       shard=shard, digest=b"deadbeef")
    return build_ipv4_udp_frame(
        LEADER_MACS[leader], design.server_mac, LEADER_IPS[leader],
        design.server_ip, 7000 + leader, design.shard_port(shard),
        wire.pack(),
    )


class TestDuplicatedUdpTiles:
    def test_chains_deadlock_free(self):
        design, _ = make_design()
        # 4 witnesses x 2 udp_rx x 2 udp_tx = 16 declared chains.
        assert len(design.chains) == 16
        assert analyze_chains(design.chains,
                              design.tile_coords) is None

    def test_all_prepares_acknowledged(self):
        design, sink = make_design()
        sent = 0
        for leader in range(4):
            shard = leader
            for opnum in range(1, 8):
                design.inject(
                    prepare_frame(design, leader, shard, opnum),
                    design.sim.cycle,
                )
                sent += 1
        design.sim.run_until(lambda: sink.count >= sent,
                             max_cycles=30_000)
        replies = [PrepareWire.unpack(parse_frame(frame).payload)
                   for frame, _ in sink.frames]
        assert all(r.msg_type == MSG_PREPARE_OK for r in replies)
        assert [w.state.last_opnum for w in design.witnesses] == \
            [7, 7, 7, 7]

    def test_flows_spread_across_udp_rx_replicas(self):
        """Different leaders (flows) land on different UDP RX tiles;
        each flow is sticky to one replica."""
        design, sink = make_design()
        sent = 0
        for leader in range(4):
            for opnum in range(1, 4):
                design.inject(
                    prepare_frame(design, leader, leader, opnum),
                    design.sim.cycle,
                )
                sent += 1
        design.sim.run_until(lambda: sink.count >= sent,
                             max_cycles=30_000)
        loads = [tile.messages_in for tile in design.udp_rx_tiles]
        assert sum(loads) == sent
        assert all(load > 0 for load in loads)  # both replicas used

    def test_replies_spread_across_udp_tx_replicas(self):
        design, sink = make_design()
        for opnum in range(1, 11):
            design.inject(prepare_frame(design, 0, 0, opnum),
                          design.sim.cycle)
        design.sim.run_until(lambda: sink.count >= 10,
                             max_cycles=30_000)
        loads = [tile.messages_in for tile in design.udp_tx_tiles]
        assert loads == [5, 5]  # witness round-robins its replies

    def test_in_order_delivery_per_flow_preserved(self):
        """Sticky flow hashing means a shard's prepares stay in order
        even with replicated protocol tiles — no gaps at the witness."""
        design, sink = make_design()
        for opnum in range(1, 30):
            design.inject(prepare_frame(design, 1, 1, opnum),
                          design.sim.cycle)
        design.sim.run_until(lambda: sink.count >= 29,
                             max_cycles=50_000)
        witness = design.witnesses[1]
        assert witness.state.last_opnum == 29
        assert witness.state.rejected == 0  # no gaps seen
