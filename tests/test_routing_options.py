"""Tests for the YX routing option wired through a full design.

The paper's framework requires only that the NoC be reliable,
point-to-point ordered, and deterministic/deadlock-free-routed
(section IV-A); the 2D mesh with XY routing is just the prototype's
choice.  These tests run a real protocol stack over a YX-routed mesh
to check the framework-level claim.
"""

from repro.apps.echo import UdpEchoAppTile
from repro.analysis.deadlock import analyze_chains, assert_deadlock_free
from repro.designs import FrameSink
from repro.noc.mesh import Mesh
from repro.noc.routing import yx_route
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)
from repro.packet.ethernet import ETHERTYPE_IPV4
from repro.packet.ipv4 import IPPROTO_UDP
from repro.sim.kernel import CycleSimulator
from repro.tiles.ethernet import EthernetRxTile, EthernetTxTile
from repro.tiles.ip import IpRxTile, IpTxTile
from repro.tiles.udp import UdpRxTile, UdpTxTile

SERVER_MAC = MacAddress("02:be:e0:00:00:01")
SERVER_IP = IPv4Address("10.0.0.10")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")
CLIENT_IP = IPv4Address("10.0.0.1")


class YxUdpEchoDesign:
    """The Fig 8a stack rotated 90 degrees onto a YX-routed 2x4 mesh:
    the receive chain runs down one column, the transmit chain down
    the other — the column-major dual of the row-major XY layout."""

    def __init__(self):
        self.sim = CycleSimulator()
        self.mesh = Mesh(2, 4, routing="yx")
        self.eth_rx = EthernetRxTile("eth_rx", self.mesh, (0, 0),
                                     my_mac=SERVER_MAC)
        self.ip_rx = IpRxTile("ip_rx", self.mesh, (0, 1),
                              my_ip=SERVER_IP)
        self.udp_rx = UdpRxTile("udp_rx", self.mesh, (0, 2))
        self.app = UdpEchoAppTile("app", self.mesh, (0, 3))
        self.udp_tx = UdpTxTile("udp_tx", self.mesh, (1, 2))
        self.ip_tx = IpTxTile("ip_tx", self.mesh, (1, 1))
        self.eth_tx = EthernetTxTile(
            "eth_tx", self.mesh, (1, 0), my_mac=SERVER_MAC,
            line_rate_bytes_per_cycle=None,
        )
        self.tiles = [self.eth_rx, self.ip_rx, self.udp_rx, self.app,
                      self.udp_tx, self.ip_tx, self.eth_tx]
        self.eth_rx.next_hop.set_entry(ETHERTYPE_IPV4, self.ip_rx.coord)
        self.ip_rx.next_hop.set_entry(IPPROTO_UDP, self.udp_rx.coord)
        self.udp_rx.next_hop.set_entry(7, self.app.coord)
        self.app.next_hop.set_entry(self.app.DEFAULT, self.udp_tx.coord)
        self.udp_tx.next_hop.set_entry(self.udp_tx.DEFAULT,
                                       self.ip_tx.coord)
        self.ip_tx.next_hop.set_entry(self.ip_tx.DEFAULT,
                                      self.eth_tx.coord)
        self.mesh.register(self.sim)
        self.sim.add_all(self.tiles)
        self.chains = [["eth_rx", "ip_rx", "udp_rx", "app",
                        "udp_tx", "ip_tx", "eth_tx"]]
        self.tile_coords = {t.name: t.coord for t in self.tiles}
        assert_deadlock_free(self.chains, self.tile_coords,
                             route_fn=yx_route)


class TestYxDesign:
    def make(self):
        design = YxUdpEchoDesign()
        design.eth_tx.add_neighbor(CLIENT_IP, CLIENT_MAC)
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        return design, sink

    def test_chain_safe_under_yx(self):
        design, _ = self.make()
        assert analyze_chains(design.chains, design.tile_coords,
                              route_fn=yx_route) is None

    def test_safety_depends_on_routing_function(self):
        """The same tile placement can be safe under one dimension
        order and deadlocky under the other — the generalisation of
        the paper's Fig 5 lesson, which is why the analyzer takes the
        route function as an input."""
        coords = {"a": (0, 0), "b": (1, 0), "c": (0, 1), "d": (2, 0)}
        chain = [["a", "b", "c", "d"]]
        assert analyze_chains(chain, coords) is None  # XY: safe
        assert analyze_chains(chain, coords,
                              route_fn=yx_route) is not None

    def test_echo_end_to_end_over_yx_mesh(self):
        design, sink = self.make()
        frame = build_ipv4_udp_frame(CLIENT_MAC, SERVER_MAC,
                                     CLIENT_IP, SERVER_IP, 5555, 7,
                                     b"column major")
        design.eth_rx.push_frame(frame, 0)
        design.sim.run_until(lambda: sink.count >= 1, max_cycles=2000)
        reply = parse_frame(sink.frames[0][0])
        assert reply.payload == b"column major"
        assert reply.udp.dst_port == 5555

    def test_latency_comparable_to_xy_layout(self):
        """The rotated YX design matches the paper's 92-cycle transit:
        routing orientation is free."""
        design, sink = self.make()
        frame = build_ipv4_udp_frame(CLIENT_MAC, SERVER_MAC,
                                     CLIENT_IP, SERVER_IP, 5555, 7,
                                     b"x")
        design.eth_rx.push_frame(frame, 0)
        design.sim.run_until(lambda: sink.count >= 1, max_cycles=2000)
        assert abs(design.eth_tx.last_transit_cycles - 92) <= 5
