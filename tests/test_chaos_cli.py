"""Tests for ``python -m repro.tools.chaos`` (in-process)."""

import pytest

from repro.tools.chaos import (
    main,
    run_design_hostile,
    run_tcp_server,
    run_udp_echo,
    run_vr_cluster,
)


class TestScenarios:
    def test_udp_scenario_passes(self):
        failures, detail = run_udp_echo(seed=101, budget_s=60.0,
                                        loss=0.01)
        assert failures == []
        assert "echoed" in detail

    def test_tcp_scenario_passes(self):
        failures, detail = run_tcp_server(seed=101, budget_s=60.0,
                                          loss=0.01)
        assert failures == []
        assert "1024B echoed" in detail

    def test_vr_scenario_passes(self):
        failures, detail = run_vr_cluster(seed=101, budget_s=60.0)
        assert failures == []
        assert "view changes" in detail

    def test_hostile_design_passes(self):
        failures, detail = run_design_hostile("udp_echo", seed=101,
                                              budget_s=60.0)
        assert failures == []
        assert "hostile frames survived" in detail

    def test_hostile_unknown_design_fails(self):
        failures, _detail = run_design_hostile("no_such", seed=101,
                                               budget_s=60.0)
        assert failures and "unknown design" in failures[0]

    def test_scenarios_are_seed_deterministic(self):
        assert (run_udp_echo(7, 60.0, 0.05)
                == run_udp_echo(7, 60.0, 0.05))


class TestMain:
    def test_single_target_exit_zero(self, capsys):
        assert main(["udp", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "chaos udp seed=101: PASS" in out

    def test_failure_exits_nonzero(self, capsys):
        assert main(["design:no_such", "--seeds", "1"]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "unknown design" in captured.err

    def test_unknown_target_is_usage_error(self):
        with pytest.raises(SystemExit):
            main(["bogus-target", "--seeds", "1"])

    def test_base_seed_and_seeds_sweep(self, capsys):
        assert main(["design:udp_echo", "--seeds", "2",
                     "--base-seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "seed=7" in out and "seed=8" in out
