"""Tests for the metrics registry, histograms, and exporters."""

import json

import pytest

from repro.telemetry.export import (
    SnapshotSeries,
    parse_prometheus_text,
    prometheus_text,
    validate_snapshot_document,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


class TestHistogram:
    def test_exact_below_two_subbuckets(self):
        """Values under 2*subbuckets land in unit-width buckets —
        percentiles there are exact, not approximate."""
        hist = Histogram("h")
        for value in range(100):
            hist.record(value)
        assert hist.count == 100
        assert hist.percentile(50) == 49
        assert hist.percentile(99) == 98
        assert hist.percentile(100) == 99

    def test_relative_error_bound_above(self):
        """Octave buckets keep relative error under 1/subbuckets."""
        for value in (1_000, 10_000, 123_456, 9_999_999):
            hist = Histogram("h", significant_digits=2)
            hist.record(value)
            recovered = hist.percentile(100)
            assert recovered >= value
            assert (recovered - value) / value < 1.0 / 128

    def test_p999_separates_tail(self):
        hist = Histogram("h")
        for _ in range(999):
            hist.record(10)
        hist.record(5_000)
        assert hist.percentile(50) == 10
        assert hist.percentile(99) == 10
        assert hist.percentile(99.9) >= 10
        assert hist.percentile(100) >= 5_000

    def test_to_dict(self):
        hist = Histogram("h", help="latency")
        hist.record(3)
        hist.record(7)
        data = hist.to_dict()
        assert data["count"] == 2
        assert data["sum"] == 10
        assert data["min"] == 3
        assert data["max"] >= 7
        assert data["p50"] == 3
        assert data["p999"] >= 7

    def test_empty_percentile_is_none(self):
        assert Histogram("h").percentile(99) is None


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_collect_schema(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.histogram("lat").record(5)
        doc = registry.collect()
        assert doc["schema"] == "repro.telemetry.metrics/1"
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["hits"]["value"] == 3
        assert by_name["lat"]["count"] == 1


class TestPrometheusExport:
    def test_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("noc.flits_forwarded", "flits").inc(1234)
        registry.gauge("kernel.active_components").set(7)
        hist = registry.histogram("latency.e2e_cycles")
        for value in (10, 20, 30, 4000):
            hist.record(value)
        text = prometheus_text(registry)
        parsed = parse_prometheus_text(text)
        assert parsed["repro_noc_flits_forwarded_total"] == 1234
        assert parsed["repro_kernel_active_components"] == 7
        assert parsed["repro_latency_e2e_cycles_count"] == 4
        assert parsed["repro_latency_e2e_cycles_sum"] == 4060
        inf_key = 'repro_latency_e2e_cycles_bucket{le="+Inf"}'
        assert parsed[inf_key] == 4

    def test_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (1, 2, 3, 1000):
            hist.record(value)
        text = prometheus_text(registry)
        counts = [float(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()
                  if line.startswith("repro_h_bucket")]
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("not a metric line at all\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("9bad_name 1\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("name_no_value\n")


class TestSnapshotSeries:
    def _series(self):
        series = SnapshotSeries(interval=100, design="t")
        series.append({"cycle": 100, "tiles": {}})
        series.append({"cycle": 200, "tiles": {}})
        return series

    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "snap.json"
        self._series().write(str(path))
        loaded = SnapshotSeries.load(str(path))
        assert loaded.interval == 100
        assert [s["cycle"] for s in loaded.snapshots] == [100, 200]

    def test_schema_rejections(self, tmp_path):
        good = self._series().to_dict()

        bad_schema = dict(good, schema="bogus/9")
        with pytest.raises(ValueError):
            validate_snapshot_document(bad_schema)

        bad_interval = dict(good, interval=0)
        with pytest.raises(ValueError):
            validate_snapshot_document(bad_interval)

        shuffled = json.loads(json.dumps(good))
        shuffled["snapshots"] = list(reversed(shuffled["snapshots"]))
        with pytest.raises(ValueError, match="must increase"):
            validate_snapshot_document(shuffled)
