"""Tests for the resource (Table V), timing (section VII-I), and
energy (Tables III/IV) models."""

import pytest

from repro import params
from repro.designs import UdpEchoDesign
from repro.designs.tcp_stack import TcpServerDesign
from repro.energy.model import (
    CpuEnergyModel,
    FpgaEnergyModel,
    TileActivity,
    rs_cpu_model,
    vr_cpu_model,
)
from repro.resources import (
    design_utilization,
    max_frequency_mhz,
    max_placeable_tiles,
    tile_cost,
)


class TestTileCosts:
    def test_paper_leaf_numbers(self):
        """Leaf costs present in Table V use the paper's numbers."""
        assert params.LUT_COSTS["router"] == 5946
        assert params.LUT_COSTS["udp_rx_proc"] == 2912
        assert params.LUT_COSTS["udp_tx_proc"] == 3105
        assert params.LUT_COSTS["noc_msg_parse_rx"] == 897
        assert params.LUT_COSTS["noc_msg_parse_tx"] == 658
        assert params.LUT_COSTS["tcp_rx_proc"] == 10304
        assert params.LUT_COSTS["tcp_rx_router"] == 8847

    def test_udp_rx_tile_near_paper(self):
        """Table V: UDP RX tile = 10054 LUTs / 9.5 BRAM."""
        cost = tile_cost("udp_rx")
        assert cost.luts == pytest.approx(10054, rel=0.05)
        assert cost.brams == 9.5

    def test_router_dominates_simple_tiles(self):
        """The paper's point: a router is ~2x the UDP processing —
        the cost of flexibility."""
        assert params.LUT_COSTS["router"] > \
            2 * 0.9 * params.LUT_COSTS["udp_rx_proc"]

    def test_empty_tile_is_router_only(self):
        cost = tile_cost("empty")
        assert cost.luts == params.LUT_COSTS["router"]
        assert cost.brams == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            tile_cost("flux_capacitor")


class TestDesignUtilization:
    def test_udp_stack_near_table5(self):
        """Table V: the Beehive UDP protocol stack = 58540 LUTs /
        4.95%, 41 BRAM / 1.9%."""
        stack = ["eth_rx", "ip_rx", "udp_rx", "udp_tx", "ip_tx",
                 "eth_tx"]
        luts = sum(tile_cost(kind).luts for kind in stack)
        brams = sum(tile_cost(kind).brams for kind in stack)
        assert luts == pytest.approx(58540, rel=0.08)
        assert brams == pytest.approx(41, rel=0.08)

    def test_whole_design_fits_comfortably(self):
        """The paper's framing: the flexibility tax is small against
        the whole U200."""
        design = UdpEchoDesign()
        utilization = design_utilization(design)
        assert utilization.lut_pct < 10.0
        assert utilization.bram_pct < 5.0

    def test_tcp_design_near_table5(self):
        """Table V: Beehive TCP/UDP stack = 144491 LUTs / 12%."""
        design = TcpServerDesign(with_logging=True)
        utilization = design_utilization(design)
        assert utilization.luts == pytest.approx(144491, rel=0.12)

    def test_empty_tiles_counted(self):
        design = UdpEchoDesign()  # 7 tiles on a 4x2 mesh -> 1 empty
        with_empty = design_utilization(design, include_empty=True)
        without = design_utilization(design, include_empty=False)
        assert with_empty.luts - without.luts == \
            params.LUT_COSTS["router"]


class TestTimingModel:
    def test_paper_placement_ceiling(self):
        """Section VII-I: 28 tiles total before timing fails 250 MHz."""
        assert max_placeable_tiles(250.0) == params.MAX_PLACEABLE_TILES

    def test_frequency_monotone(self):
        freqs = [max_frequency_mhz(n) for n in range(1, 40)]
        assert all(a > b for a, b in zip(freqs, freqs[1:]))

    def test_28_passes_29_fails(self):
        assert max_frequency_mhz(28) >= 250.0
        assert max_frequency_mhz(29) < 250.0

    def test_bad_input(self):
        with pytest.raises(ValueError):
            max_frequency_mhz(0)


class TestEnergyModels:
    def test_cpu_power_linear(self):
        model = CpuEnergyModel(idle_w=40, core_w=10)
        assert model.power_w(0) == 40
        assert model.power_w(2.5) == 65
        with pytest.raises(ValueError):
            model.power_w(-1)

    def test_mj_per_op(self):
        model = CpuEnergyModel(idle_w=40, core_w=10)
        assert model.mj_per_op(1.0, ops_per_s=50_000) == \
            pytest.approx(1.0)
        with pytest.raises(ValueError):
            model.mj_per_op(1.0, ops_per_s=0)

    def test_fpga_power_composition(self):
        model = FpgaEnergyModel(static_w=22, tile_idle_w=0.3,
                                tile_active_w=0.8)
        tiles = [TileActivity("a", 0.0), TileActivity("b", 1.0)]
        assert model.power_w(tiles) == pytest.approx(22 + 0.6 + 0.8)

    def test_fpga_bad_utilisation(self):
        model = FpgaEnergyModel()
        with pytest.raises(ValueError):
            model.power_w([TileActivity("a", 1.5)])

    def test_rs_cpu_model_matches_table3_fit(self):
        model = rs_cpu_model()
        # 1 busy core at 61 kops/s (2 Gbps of 4 KB ops) ~ 1.1 mJ/op.
        ops = 2e9 / 8 / 4096
        assert model.mj_per_op(1.0, ops) == pytest.approx(1.1, rel=0.1)

    def test_vr_cpu_model_matches_table4_fit(self):
        model = vr_cpu_model()
        # Table IV 1-shard point: ~0.34 core-util at 31 kops.
        utilisation = 31_000 * params.VR_CPU_WITNESS_SERVICE_S
        assert model.mj_per_op(utilisation, 31_000) == \
            pytest.approx(1.51, rel=0.1)
