"""Tests for the optional TCP congestion-control extension.

The paper's engine ships without congestion control and lists it as
integration work (section V-D); this extension adds RFC 5681 slow
start, congestion avoidance, and window collapse on loss, off by
default so the default engine stays paper-faithful.
"""

from repro.designs.tcp_stack import TcpServerDesign
from repro.packet import IPv4Address, MacAddress
from repro.tcp.app import TcpSourceAppTile
from repro.tcp.peer import SoftTcpPeer

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

MSS = 1000


def make_sender(congestion_control, **peer_kwargs):
    design = TcpServerDesign(
        tcp_port=5000, app_tile_cls=TcpSourceAppTile, request_size=64,
        mss=MSS, chunk_size=16384, line_rate_bytes_per_cycle=None,
        congestion_control=congestion_control,
    )
    design.add_client(CLIENT_IP, CLIENT_MAC)
    peer_kwargs.setdefault("wire_cycles", 400)
    peer = SoftTcpPeer(design, CLIENT_IP, CLIENT_MAC,
                       design.server_ip, 5000,
                       service_cycles=2, window=60_000,
                       **peer_kwargs)
    design.sim.add(peer)
    peer.connect()
    return design, peer


def flow_state(design):
    flow_id = design.flows.flows()[0]
    return design.flows.tx[flow_id], design.flows.rx[flow_id]


class TestDisabledByDefault:
    def test_paper_faithful_default(self):
        design, peer = make_sender(congestion_control=False)
        design.sim.run_until(lambda: peer.established,
                             max_cycles=50_000)
        design.sim.run(5_000)
        tx, _ = flow_state(design)
        assert tx.cwnd == 0  # disabled: peer window is the only limit


class TestSlowStart:
    def test_window_grows_exponentially_then_linearly(self):
        design, peer = make_sender(congestion_control=True)
        design.sim.run_until(lambda: peer.established,
                             max_cycles=50_000)
        tx, _ = flow_state(design)
        assert tx.cwnd == 2 * MSS  # initial window
        samples = [tx.cwnd]
        for _ in range(20):
            design.sim.run(2_000)
            samples.append(tx.cwnd)
        assert samples[-1] > samples[0]  # the window opened
        # It is bounded by ssthresh growth dynamics, not unbounded.
        assert tx.cwnd < 10_000_000

    def test_initial_window_limits_inflight(self):
        """Right after the handshake the sender may have at most the
        initial window in flight, even with a huge peer window."""
        design, peer = make_sender(congestion_control=True,
                                   wire_cycles=3000)
        from repro.tcp.flow import TcpState, seq_diff

        def server_established():
            flows = design.flows.flows()
            return flows and design.flows.rx[flows[0]].state == \
                TcpState.ESTABLISHED

        design.sim.run_until(server_established, max_cycles=100_000)
        tx, rx = flow_state(design)
        # Before any ACK for data returns (one-way wire = 3000 cy),
        # in-flight is capped by cwnd = 2 * MSS.
        design.sim.run_until(lambda: tx.tx_stream_sent > 0,
                             max_cycles=50_000)
        design.sim.run(2_000)
        in_flight = seq_diff(tx.snd_nxt, rx.snd_una)
        assert 0 < in_flight <= 2 * MSS

    def test_uncontrolled_sender_fills_peer_window_instead(self):
        design, peer = make_sender(congestion_control=False,
                                   wire_cycles=3000)
        from repro.tcp.flow import TcpState, seq_diff

        def server_established():
            flows = design.flows.flows()
            return flows and design.flows.rx[flows[0]].state == \
                TcpState.ESTABLISHED

        design.sim.run_until(server_established, max_cycles=100_000)
        tx, rx = flow_state(design)
        design.sim.run_until(lambda: tx.tx_stream_sent > 0,
                             max_cycles=50_000)
        design.sim.run(4_000)
        in_flight = seq_diff(tx.snd_nxt, rx.snd_una)
        assert in_flight > 10 * MSS  # blasted well past 2*MSS


class TestLossResponse:
    def test_rto_collapses_window(self):
        design, peer = make_sender(congestion_control=True)
        design.tcp_tx.rto_cycles = 3_000
        design.sim.run_until(lambda: peer.established,
                             max_cycles=50_000)
        tx, _ = flow_state(design)
        # Let the window open first.
        design.sim.run(20_000)
        opened = tx.cwnd
        assert opened > 2 * MSS
        # Black-hole the peer: its ACKs stop arriving at the server.
        design.eth_rx.push_frame = lambda frame, cycle: None
        design.sim.run(20_000)
        assert tx.retransmits >= 1
        assert tx.cwnd == MSS            # collapsed to one segment
        assert tx.ssthresh >= 2 * MSS    # and remembers half the flight

    def test_fast_retransmit_halves_window(self):
        design, peer = make_sender(congestion_control=True)
        design.sim.run_until(lambda: peer.established,
                             max_cycles=50_000)
        design.sim.run(20_000)
        tx, rx = flow_state(design)
        opened = tx.cwnd
        assert opened > 4 * MSS
        design.tcp_tx.fast_retransmit(rx.flow_id)
        assert tx.cwnd < opened
        assert tx.cwnd == tx.ssthresh

    def test_stream_still_delivered_with_congestion_control(self):
        """Correctness is unchanged: the receiver gets the stream."""
        design, peer = make_sender(congestion_control=True)
        design.sim.run_until(lambda: len(peer.received) >= 48_000,
                             max_cycles=2_000_000)
        assert bytes(peer.received[:64]) == bytes(64)
