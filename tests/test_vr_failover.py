"""Leader-validation tests: the witness's actual job.

"Our accelerator operates as a witness, that is, it only validates the
leader and tracks the operation order" (section VI-B).  The safety
property that matters: once the view moves on (a new leader was
elected), a deposed leader can never again get operations verified —
so it can never commit and reply to clients with stale authority.
"""

from repro.apps.vr.cluster import VrExperiment
from repro.apps.vr.witness import WitnessDecision


class TestDeposedLeader:
    def test_stale_leader_commits_nothing_after_view_change(self):
        experiment = VrExperiment(shards=1, witness_kind="fpga",
                                  n_clients=3)
        for client in experiment.clients:
            client.start()
        experiment.sim.run_until(0.05)
        leader = experiment.leaders[0]
        witness = experiment.witnesses[0]
        completed_before = leader.completed
        assert completed_before > 0

        # A view change happens elsewhere (new leader elected): the
        # witness adopts view 1.  Our leader still believes it leads
        # view 0.
        witness.state.handle_prepare(view=1, opnum=witness.state
                                     .last_opnum + 1, digest=b"new")

        # Let the deposed leader's in-flight pipeline drain, then run
        # a long further window.
        experiment.sim.run_until(0.06)
        drained = leader.completed
        experiment.sim.run_until(0.25)

        # Safety: nothing committed on the stale view.
        assert leader.completed == drained
        assert witness.state.rejected > 0  # stale prepares refused

    def test_witness_serves_the_new_view(self):
        """After adopting a new view, in-order prepares for it are
        verified normally — the witness follows the epoch, not the
        node."""
        experiment = VrExperiment(shards=1, witness_kind="cpu",
                                  n_clients=1)
        witness = experiment.witnesses[0]
        state = witness.state
        assert state.handle_prepare(0, 1, b"a") == \
            WitnessDecision.ACCEPT
        # New leader, new view, continuing the op sequence.
        assert state.handle_prepare(3, 2, b"b") == \
            WitnessDecision.ACCEPT
        assert state.view == 3
        # The old leader's next op is refused.
        assert state.handle_prepare(0, 3, b"c") == \
            WitnessDecision.STALE_VIEW
        assert state.last_opnum == 2

    def test_replicas_never_ahead_of_leader(self):
        """Replica state is always a prefix of the leader's commits."""
        experiment = VrExperiment(shards=2, witness_kind="fpga",
                                  n_clients=4)
        for client in experiment.clients:
            client.start()
        experiment.sim.run_until(0.1)
        for leader, replica in zip(experiment.leaders,
                                   experiment.replicas):
            assert replica.kv.writes <= leader.kv.writes
