"""Robustness: fuzzed and hostile traffic against the designs.

The paper's next-hop-table semantics ("any packet that does not have an
entry for a next hop is dropped to filter out unwanted traffic") means
the stack must *drop*, never crash or emit garbage, whatever arrives
off the wire.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import FrameSink, UdpEchoDesign
from repro.designs.tcp_stack import TcpServerDesign
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def make_udp_design():
    design = UdpEchoDesign(udp_port=7, line_rate_bytes_per_cycle=None)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)
    return design, sink


def valid_frame(payload=b"ok", dst_port=7):
    return build_ipv4_udp_frame(
        CLIENT_MAC, MacAddress("02:be:e0:00:00:01"), CLIENT_IP,
        IPv4Address("10.0.0.10"), 5555, dst_port, payload,
    )


class TestFuzzedFrames:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_mutated_frames_never_crash_or_leak(self, data):
        """Flip random bytes of a valid frame: the stack either echoes
        a still-valid request or drops; it never crashes and never
        emits a frame for a corrupted request."""
        base = bytearray(valid_frame(payload=bytes(32)))
        n_flips = data.draw(st.integers(1, 4))
        positions = data.draw(st.lists(
            st.integers(0, len(base) - 1), min_size=n_flips,
            max_size=n_flips))
        mutated = bytearray(base)
        for position in positions:
            mutated[position] ^= data.draw(st.integers(1, 255))
        design, sink = make_udp_design()
        design.inject(bytes(mutated), 0)
        design.sim.run(600)
        if sink.count:
            # Anything echoed must be a well-formed frame.
            parse_frame(sink.frames[0][0])

    @settings(max_examples=40, deadline=None)
    @given(blob=st.binary(min_size=0, max_size=200))
    def test_random_bytes_never_crash(self, blob):
        design, sink = make_udp_design()
        design.inject(blob, 0)
        design.sim.run(600)
        assert sink.count == 0  # garbage never produces a reply

    def test_truncated_frames_at_every_layer(self):
        frame = valid_frame(payload=bytes(64))
        design, sink = make_udp_design()
        for cut in (0, 5, 14, 20, 33, 34, 41, 42, 50):
            design.inject(frame[:cut], design.sim.cycle)
        design.sim.run(2000)
        assert sink.count == 0

    def test_good_traffic_flows_despite_garbage(self):
        """Hostile frames interleaved with real ones don't wedge the
        stack or corrupt the real replies."""
        design, sink = make_udp_design()
        garbage = [b"", b"\xff" * 9, valid_frame()[:21],
                   bytes(150), b"\x00" * 64]
        for index in range(10):
            design.inject(garbage[index % len(garbage)],
                          design.sim.cycle)
            design.inject(valid_frame(payload=bytes([index]) * 16),
                          design.sim.cycle)
        design.sim.run_until(lambda: sink.count >= 10,
                             max_cycles=20_000)
        payloads = {parse_frame(frame).payload
                    for frame, _ in sink.frames}
        assert payloads == {bytes([i]) * 16 for i in range(10)}


class TestHostileTcp:
    def make_design(self):
        design = TcpServerDesign(tcp_port=5000, request_size=16)
        design.add_client(CLIENT_IP, CLIENT_MAC)
        return design

    def test_ack_flood_without_connection(self):
        """ACKs for nonexistent flows are filtered, not processed."""
        from repro.packet import TcpHeader, TCP_ACK
        from repro.packet.builder import build_tcp_frame

        design = self.make_design()
        for seq in range(20):
            header = TcpHeader(src_port=1000 + seq, dst_port=5000,
                               seq=seq, ack=seq, flags=TCP_ACK)
            design.inject(build_tcp_frame(
                CLIENT_MAC, design.server_mac, CLIENT_IP,
                design.server_ip, header), design.sim.cycle)
        design.sim.run(5000)
        assert len(design.flows) == 0
        assert design.tcp_tx.segments_out == 0

    def test_syn_flood_bounded_by_table(self):
        """A SYN flood allocates at most max_flows flow entries."""
        from repro.packet import TcpHeader, TCP_SYN
        from repro.packet.builder import build_tcp_frame

        design = TcpServerDesign(tcp_port=5000, request_size=16,
                                 max_flows=4)
        design.add_client(CLIENT_IP, CLIENT_MAC)
        for port in range(30_000, 30_040):
            header = TcpHeader(src_port=port, dst_port=5000, seq=1,
                               flags=TCP_SYN)
            design.inject(build_tcp_frame(
                CLIENT_MAC, design.server_mac, CLIENT_IP,
                design.server_ip, header), design.sim.cycle)
        design.sim.run(20_000)
        assert len(design.flows) == 4

    def test_rst_tears_down(self):
        from repro.packet import TcpHeader, TCP_RST, TCP_SYN
        from repro.packet.builder import build_tcp_frame
        from repro.tcp.peer import SoftTcpPeer

        design = self.make_design()
        peer = SoftTcpPeer(design, CLIENT_IP, CLIENT_MAC,
                           design.server_ip, 5000, wire_cycles=50)
        design.sim.add(peer)
        peer.connect()
        design.sim.run_until(lambda: len(design.flows) == 1,
                             max_cycles=20_000)
        header = TcpHeader(src_port=peer.src_port, dst_port=5000,
                           seq=peer.snd_nxt, flags=TCP_RST)
        design.inject(build_tcp_frame(
            CLIENT_MAC, design.server_mac, CLIENT_IP,
            design.server_ip, header), design.sim.cycle)
        design.sim.run_until(lambda: len(design.flows) == 0,
                             max_cycles=20_000)
        assert design.tcp_rx.resets == 1


class TestVlanTraffic:
    def test_vlan_tagged_request_echoed(self):
        """Section V-B: the Ethernet receive processor handles VLAN
        tags; a tagged request gets echoed (untagged reply)."""
        design, sink = make_udp_design()
        tagged = build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, CLIENT_IP,
            design.server_ip, 5555, 7, b"tagged!", vlan=42,
        )
        design.inject(tagged, 0)
        design.sim.run_until(lambda: sink.count >= 1, max_cycles=2000)
        reply = parse_frame(sink.frames[0][0])
        assert reply.payload == b"tagged!"
