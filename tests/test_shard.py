"""Sharded execution engine (repro.sim.shard / repro.noc.shardmesh).

The contract under test: cutting a design's mesh into K contiguous
column bands, each hosting a full per-shard simulator, and exchanging
boundary flits once per cycle behind the 1-cycle link lookahead must
be *bit-identical* to the single-process reference — same frames at
the same cycles, same counters, same (canonically ordered) traces.

Trace canonicalisation: one shared tracer records all shards' events
at correct cycles; only within-cycle interleaving differs across K, so
fingerprints sort the event lists and strip ``msg_id`` (allocation
order differs across shard namespaces; ``packet_id`` stays exact).
"""

import pytest

from repro.designs import (FrameSink, FrameSource, LoggedUdpEchoDesign,
                           UdpEchoDesign)
from repro.designs.scaled_echo import ScaledEchoDesign
from repro.faults import FaultPlan
from repro.noc.message import reset_id_counters
from repro.noc.shardmesh import band_bounds
from repro.packet import IPv4Address, MacAddress, build_ipv4_udp_frame
from repro.sim.shard import ShardedSimulator, make_simulator
from repro.telemetry import design_counters
from repro.telemetry.probe import attach_probe
from repro.telemetry.trace import Tracer, attach_tracer

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")

COMBOS = [(kernel, mesh, tile)
          for kernel in ("scheduled", "naive")
          for mesh in ("object", "flat")
          for tile in ("object", "flat")]


def echo_frame(design, payload, sport=5555, port=7):
    return build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                CLIENT_IP, design.server_ip,
                                sport, port, payload)


def run_echo(kernel, mesh_backend, tile_backend, shards,
             saturate=False, count=30, cycles=6000):
    reset_id_counters()
    design = UdpEchoDesign(udp_port=7,
                           line_rate_bytes_per_cycle=(
                               None if saturate else 50.0),
                           kernel=kernel, mesh_backend=mesh_backend,
                           tile_backend=tile_backend, shards=shards)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    frame = echo_frame(design, b"x" * 200)
    source = FrameSource(design.inject, lambda i: frame,
                         rate=(None if saturate else 5.0), count=count)
    sink = FrameSink(design.eth_tx)
    design.sim.add(source)
    design.sim.add(sink)
    design.sim.run(cycles)
    counters = design_counters(design)
    return {
        "cycle": design.sim.cycle,
        "frames": list(sink.frames),
        "count": sink.count,
        "first": sink.first_cycle,
        "last": sink.last_cycle,
        "tiles": counters["tiles"],
        "router_flits": counters["router_flits"],
        "total_flits": counters["total_flits"],
    }


class TestBandBounds:
    def test_even_split(self):
        assert band_bounds(8, 4) == [(0, 2), (2, 2), (4, 2), (6, 2)]

    def test_remainder_goes_left(self):
        assert band_bounds(10, 4) == [(0, 3), (3, 3), (6, 2), (8, 2)]

    def test_single_shard_is_whole_mesh(self):
        assert band_bounds(5, 1) == [(0, 5)]

    def test_bands_tile_the_width(self):
        for width in (4, 7, 16):
            for shards in range(1, width + 1):
                bounds = band_bounds(width, shards)
                assert bounds[0][0] == 0
                assert sum(w for _, w in bounds) == width
                for (x0, w0), (x1, _) in zip(bounds, bounds[1:]):
                    assert x1 == x0 + w0

    def test_too_many_shards_rejected(self):
        with pytest.raises(ValueError):
            band_bounds(4, 5)
        with pytest.raises(ValueError):
            band_bounds(4, 0)

    def test_explicit_widths(self):
        assert band_bounds(8, 3, [1, 5, 2]) == \
            [(0, 1), (1, 5), (6, 2)]

    def test_explicit_widths_validated(self):
        with pytest.raises(ValueError, match="band widths"):
            band_bounds(8, 3, [4, 4])          # wrong length
        with pytest.raises(ValueError, match="sum"):
            band_bounds(8, 3, [1, 2, 3])       # wrong total
        with pytest.raises(ValueError, match=">= 1 column"):
            band_bounds(8, 3, [0, 4, 4])       # empty band


class TestFactory:
    def test_single_shard_is_plain_simulator(self):
        sim = make_simulator(shards=1)
        assert not isinstance(sim, ShardedSimulator)
        assert not getattr(sim, "is_sharded", False)

    def test_sharded_simulator_advertises_shards(self):
        sim = make_simulator(shards=3)
        assert isinstance(sim, ShardedSimulator)
        assert sim.is_sharded
        assert sim.shards == 3

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            make_simulator(shards=2, shard_transport="carrier-pigeon")

    def test_sanitized_tick_unsupported(self):
        with pytest.raises(NotImplementedError):
            make_simulator(shards=2).sanitized_tick(None)


class TestEquivalenceMatrix:
    """Pinned-seed runs at K=2/4 bit-identical to the K=1 reference."""

    @pytest.mark.parametrize("kernel,mesh_backend,tile_backend", COMBOS)
    def test_idle_heavy_k2(self, kernel, mesh_backend, tile_backend):
        ref = run_echo(kernel, mesh_backend, tile_backend, 1)
        assert ref["count"] == 30
        assert run_echo(kernel, mesh_backend, tile_backend, 2) == ref

    @pytest.mark.parametrize("kernel,mesh_backend,tile_backend",
                             [("scheduled", "flat", "flat"),
                              ("scheduled", "object", "object"),
                              ("naive", "flat", "object")])
    def test_saturated_k2_and_k4(self, kernel, mesh_backend,
                                 tile_backend):
        ref = run_echo(kernel, mesh_backend, tile_backend, 1,
                       saturate=True)
        assert ref["count"] == 30
        for shards in (2, 4):
            got = run_echo(kernel, mesh_backend, tile_backend, shards,
                           saturate=True)
            assert got == ref, f"K={shards} diverged"

    def test_same_k_runs_are_deterministic(self):
        # Full equality, msg_ids included: the per-shard namespaces
        # are themselves deterministic.
        first = run_echo("scheduled", "flat", "flat", 4, saturate=True)
        second = run_echo("scheduled", "flat", "flat", 4, saturate=True)
        assert first == second

    def test_logged_design_k2(self):
        def run(shards):
            reset_id_counters()
            design = LoggedUdpEchoDesign(
                udp_port=7, line_rate_bytes_per_cycle=50.0,
                kernel="scheduled", mesh_backend="flat",
                tile_backend="flat", shards=shards)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            frame = echo_frame(design, b"l" * 120)
            source = FrameSource(design.inject, lambda i: frame,
                                 rate=5.0, count=20)
            sink = FrameSink(design.eth_tx)
            design.sim.add(source)
            design.sim.add(sink)
            design.sim.run(6000)
            counters = design_counters(design)
            return {"cycle": design.sim.cycle,
                    "frames": list(sink.frames),
                    "tiles": counters["tiles"]}

        ref = run(1)
        assert run(2) == ref

    def test_scaled_echo_k4(self):
        def run(shards, bounds=None):
            reset_id_counters()
            design = ScaledEchoDesign(n_apps=16, width=8, height=4,
                                      kernel="scheduled",
                                      mesh_backend="flat",
                                      tile_backend="flat",
                                      shards=shards,
                                      shard_bounds=bounds)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            frame = echo_frame(design, b"s" * 256)
            source = FrameSource(design.inject, lambda i: frame,
                                 rate=None, count=120)
            sink = FrameSink(design.eth_tx)
            design.sim.add(source)
            design.sim.add(sink)
            design.sim.run(9000)
            counters = design_counters(design)
            return {"cycle": design.sim.cycle,
                    "frames": list(sink.frames),
                    "count": sink.count,
                    "tiles": counters["tiles"],
                    "router_flits": counters["router_flits"]}

        ref = run(1)
        assert ref["count"] == 120
        for shards in (2, 4):
            assert run(shards) == ref, f"K={shards} diverged"
        # Uneven hand-balanced cuts move the boundary columns but must
        # not move a single bit of behaviour.
        assert run(2, bounds=[3, 5]) == ref
        assert run(4, bounds=[3, 2, 2, 1]) == ref


def strip_msg_ids(spans):
    return sorted(
        (s.tile, s.coord, s.packet_id, s.received, s.start, s.end,
         s.outputs) for s in spans)


def trace_fingerprint(tracer):
    return {
        "spans": strip_msg_ids(tracer.spans),
        "inject_spans": sorted(
            (s.coord, s.packet_id, s.start, s.end)
            for s in tracer.inject_spans),
        "drops": sorted(tracer.drops),
        "link_flits": sorted(tracer.link_flits),
        "link_stalls": sorted(tracer.link_stalls),
        "horizon": tracer.last_cycle,
    }


class TestTracedEquivalence:
    @pytest.mark.parametrize("kernel,backend",
                             [("scheduled", "flat"),
                              ("scheduled", "object"),
                              ("naive", "flat")])
    def test_merged_trace_streams_identical(self, kernel, backend):
        def run(shards):
            reset_id_counters()
            design = UdpEchoDesign(udp_port=7,
                                   line_rate_bytes_per_cycle=50.0,
                                   kernel=kernel, mesh_backend=backend,
                                   tile_backend=backend, shards=shards)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            tracer = attach_tracer(design, Tracer())
            frame = echo_frame(design, b"t" * 180)
            source = FrameSource(design.inject, lambda i: frame,
                                 rate=None, count=30)
            sink = FrameSink(design.eth_tx)
            design.sim.add(source)
            design.sim.add(sink)
            design.sim.run(5000)
            assert sink.count == 30
            fingerprint = trace_fingerprint(tracer)
            fingerprint["frames"] = list(sink.frames)
            fingerprint["cycle"] = design.sim.cycle
            return fingerprint

        ref = run(1)
        for shards in (2, 4):
            assert run(shards) == ref, f"K={shards} diverged"


class TestFaultSoak:
    @pytest.mark.parametrize("backend", ["object", "flat"])
    def test_faulted_run_bit_identical(self, backend):
        # Fault targets straddle the shard cuts: a frozen tile in the
        # middle band, a stalled link and flit corruption near the
        # east edge, plus seeded wire noise on ingress.
        def run(shards):
            reset_id_counters()
            plan = (FaultPlan(seed=0xD1CE)
                    .wire(drop=0.05, corrupt=0.05, duplicate=0.03,
                          reorder=0.05, delay=0.05,
                          delay_range=(1, 40))
                    .freeze_tile("udp_rx", 400, 700)
                    .stall_link((1, 0), 900, 200)
                    .corrupt_flits(0.02, coords=[(3, 0)]))
            design = UdpEchoDesign(udp_port=7,
                                   line_rate_bytes_per_cycle=50.0,
                                   kernel="scheduled",
                                   mesh_backend=backend,
                                   tile_backend=backend,
                                   fault_plan=plan, shards=shards)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            frame = echo_frame(design, b"f" * 150)
            source = FrameSource(design.inject, lambda i: frame,
                                 rate=4.0, count=60)
            sink = FrameSink(design.eth_tx)
            design.sim.add(source)
            design.sim.add(sink)
            design.sim.run(12000)
            counters = design_counters(design)
            return {"cycle": design.sim.cycle,
                    "frames": list(sink.frames),
                    "malformed": sink.malformed,
                    "tiles": counters["tiles"],
                    "router_flits": counters["router_flits"],
                    "faults": design.fault_engine.counters}

        ref = run(1)
        for shards in (2, 4):
            assert run(shards) == ref, f"K={shards} diverged"


class TestProbedRun:
    def test_probe_sees_identical_behaviour(self):
        def run(shards):
            reset_id_counters()
            design = UdpEchoDesign(udp_port=7,
                                   line_rate_bytes_per_cycle=50.0,
                                   kernel="scheduled",
                                   mesh_backend="flat",
                                   tile_backend="flat", shards=shards)
            design.add_client(CLIENT_IP, CLIENT_MAC)
            probe = attach_probe(design, interval=64)
            frame = echo_frame(design, b"p" * 100)
            source = FrameSource(design.inject, lambda i: frame,
                                 rate=5.0, count=25)
            sink = FrameSink(design.eth_tx)
            design.sim.add(source)
            design.sim.add(sink)
            design.sim.run(4000)
            return {"frames": list(sink.frames),
                    "count": sink.count,
                    "samples": probe.samples_taken}

        ref = run(1)
        for shards in (2, 4):
            got = run(shards)
            # Simulated behaviour is exact; the probe itself samples
            # on the same cadence (its snapshots may differ only in
            # end-of-cycle FIFO depths, which include the exchange's
            # deliveries — see Probe.shard_scope).
            assert got["frames"] == ref["frames"]
            assert got["count"] == ref["count"]
            assert got["samples"] == ref["samples"]


class TestTelemetrySurface:
    def test_design_report_shows_shards(self):
        from repro.telemetry import design_report
        reset_id_counters()
        design = UdpEchoDesign(udp_port=7,
                               line_rate_bytes_per_cycle=None,
                               kernel="scheduled", mesh_backend="flat",
                               tile_backend="flat", shards=2)
        design.add_client(CLIENT_IP, CLIENT_MAC)
        design.inject(echo_frame(design, b"t" * 64), 0)
        design.sim.run(500)
        assert "shards=2" in design_report(design)

        reset_id_counters()
        plain = UdpEchoDesign(udp_port=7,
                              line_rate_bytes_per_cycle=None)
        assert "shards=1" in design_report(plain)


class TestMultiprocessTransport:
    def build(self, shards, transport):
        reset_id_counters()
        design = UdpEchoDesign(udp_port=7,
                               line_rate_bytes_per_cycle=None,
                               kernel="scheduled", mesh_backend="flat",
                               tile_backend="flat", shards=shards,
                               shard_transport=transport)
        design.add_client(CLIENT_IP, CLIENT_MAC)
        frame = echo_frame(design, b"m" * 200)
        source = FrameSource(design.inject, lambda i: frame,
                             rate=None, count=50)
        sink = FrameSink(design.eth_tx)
        design.sim.add(source)
        design.sim.add(sink)
        return design, sink

    def test_mp_matches_loopback(self):
        import multiprocessing
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        design, sink = self.build(2, "loopback")
        design.sim.run(4000)
        ref = (sink.count, list(sink.frames))
        assert ref[0] == 50

        design, sink = self.build(2, "mp")
        design.sim.set_harvest(lambda: (sink.count, list(sink.frames)))
        try:
            design.sim.run(4000)
            results = design.sim.harvest()
            stats = design.sim.stats()
        finally:
            design.sim.shutdown()
        assert results[0] == ref  # the sink lives in shard 0
        assert results[1][0] == 0
        assert stats["shards"] == 2

    def test_mp_rejects_run_until_and_ticks(self):
        design, _ = self.build(2, "mp")
        with pytest.raises(NotImplementedError):
            design.sim.run_until(lambda: True)
        with pytest.raises(RuntimeError):
            design.sim.tick()
        design.sim.shutdown()

    def test_mp_rejects_global_components(self):
        # Coordinator-stepped (global) components need the loopback
        # transport; the FaultEngine is added at design construction,
        # so the rejection fires there.
        plan = FaultPlan(seed=1).wire(drop=0.1)
        reset_id_counters()
        with pytest.raises(RuntimeError):
            UdpEchoDesign(udp_port=7,
                          line_rate_bytes_per_cycle=None,
                          kernel="scheduled", mesh_backend="flat",
                          tile_backend="flat", fault_plan=plan,
                          shards=2, shard_transport="mp")
