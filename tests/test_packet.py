"""Tests for the byte-accurate packet formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packet import (
    ETHERTYPE_IPV4,
    EthernetHeader,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPv4Address,
    IPv4Header,
    MacAddress,
    TCP_ACK,
    TCP_SYN,
    TcpHeader,
    UdpHeader,
    build_ipv4_udp_frame,
    build_tcp_frame,
    internet_checksum,
    parse_frame,
    verify_checksum,
)

MAC_A = MacAddress("02:00:00:00:00:01")
MAC_B = MacAddress("02:00:00:00:00:02")
IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.0.0.2")


class TestChecksum:
    def test_rfc1071_example(self):
        # Words 0x0001 0xf203 0xf4f5 0xf6f7 sum to 0x2ddf0, fold to
        # 0xddf2, complement to 0x220d (RFC 1071 section 3 example).
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_verify_roundtrip(self):
        data = b"hello checksum world"
        csum = internet_checksum(data)
        # Embedding the checksum makes the whole thing verify.
        assert verify_checksum(data + csum.to_bytes(2, "big"))

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    @given(st.binary(max_size=200))
    def test_checksum_in_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF


class TestMacAddress:
    def test_string_roundtrip(self):
        mac = MacAddress("aa:bb:cc:dd:ee:ff")
        assert repr(mac) == "aa:bb:cc:dd:ee:ff"

    def test_int_bytes_equal(self):
        assert MacAddress(0x020000000001) == MAC_A

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            MacAddress("aa:bb")
        with pytest.raises(ValueError):
            MacAddress(b"\x00" * 5)
        with pytest.raises(TypeError):
            MacAddress(3.5)

    def test_hashable(self):
        assert len({MAC_A, MacAddress("02:00:00:00:00:01")}) == 1


class TestIPv4Address:
    def test_string_roundtrip(self):
        assert repr(IPv4Address("192.168.1.200")) == "192.168.1.200"

    def test_forms_equal(self):
        assert IPv4Address("10.0.0.1") == IPv4Address(0x0A000001)
        assert IPv4Address(b"\x0a\x00\x00\x01") == IP_A

    def test_bad_inputs(self):
        for bad in ("10.0.0", "10.0.0.256", -1, 1 << 32):
            with pytest.raises(ValueError):
                IPv4Address(bad)


class TestEthernet:
    def test_roundtrip(self):
        hdr = EthernetHeader(dst=MAC_B, src=MAC_A)
        parsed, rest = EthernetHeader.unpack(hdr.pack() + b"payload")
        assert parsed == hdr
        assert rest == b"payload"

    def test_vlan_roundtrip(self):
        hdr = EthernetHeader(dst=MAC_B, src=MAC_A, vlan=42, vlan_pcp=5)
        parsed, rest = EthernetHeader.unpack(hdr.pack() + b"x")
        assert parsed.vlan == 42
        assert parsed.vlan_pcp == 5
        assert parsed.ethertype == ETHERTYPE_IPV4
        assert rest == b"x"

    def test_vlan_header_len(self):
        assert EthernetHeader(dst=MAC_B, src=MAC_A).header_len == 14
        assert EthernetHeader(dst=MAC_B, src=MAC_A, vlan=1).header_len == 18

    def test_bad_vlan(self):
        with pytest.raises(ValueError):
            EthernetHeader(dst=MAC_B, src=MAC_A, vlan=5000)

    def test_truncated(self):
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 10)


class TestIPv4Header:
    def make(self, **kw):
        defaults = dict(src=IP_A, dst=IP_B, protocol=IPPROTO_UDP,
                        total_length=20 + kw.pop("payload_len", 8))
        defaults.update(kw)
        return IPv4Header(**defaults)

    def test_roundtrip(self):
        hdr = self.make(payload_len=4)
        packed = hdr.pack() + b"abcd"
        parsed, payload = IPv4Header.unpack(packed)
        assert parsed.src == IP_A and parsed.dst == IP_B
        assert payload == b"abcd"

    def test_checksum_is_valid(self):
        assert verify_checksum(self.make().pack())

    def test_corrupted_checksum_rejected(self):
        packed = bytearray(self.make(payload_len=0).pack())
        packed[8] ^= 0xFF  # flip TTL
        with pytest.raises(ValueError, match="checksum"):
            IPv4Header.unpack(bytes(packed))

    def test_options_roundtrip(self):
        hdr = self.make(options=b"\x01" * 8, payload_len=2)
        hdr.total_length = hdr.header_len + 2
        parsed, payload = IPv4Header.unpack(hdr.pack() + b"hi")
        assert parsed.options == b"\x01" * 8
        assert parsed.header_len == 28
        assert payload == b"hi"

    def test_misaligned_options_rejected(self):
        with pytest.raises(ValueError):
            self.make(options=b"\x01\x02")

    def test_oversized_options_rejected(self):
        with pytest.raises(ValueError):
            self.make(options=b"\x00" * 44)

    def test_not_ipv4_rejected(self):
        data = bytearray(self.make().pack())
        data[0] = (6 << 4) | 5
        with pytest.raises(ValueError, match="version"):
            IPv4Header.unpack(bytes(data) + b"\x00" * 8)

    def test_bad_total_length_rejected(self):
        hdr = self.make(payload_len=100)  # claims more than provided
        with pytest.raises(ValueError, match="total_length"):
            IPv4Header.unpack(hdr.pack())

    def test_pseudo_header_layout(self):
        pseudo = self.make().pseudo_header(8)
        assert pseudo == IP_A.packed + IP_B.packed + \
            bytes([0, IPPROTO_UDP]) + (8).to_bytes(2, "big")


class TestUdp:
    def test_roundtrip_with_checksum(self):
        ip = IPv4Header(src=IP_A, dst=IP_B, protocol=IPPROTO_UDP,
                        total_length=20 + 8 + 5)
        udp = UdpHeader(src_port=1234, dst_port=80, length=13)
        packed = udp.pack_with_checksum(ip.pseudo_header(13), b"hello")
        parsed, payload = UdpHeader.unpack(packed + b"hello")
        assert parsed.src_port == 1234 and parsed.dst_port == 80
        assert payload == b"hello"
        assert parsed.verify(ip.pseudo_header(13), payload)

    def test_corrupt_payload_fails_verify(self):
        ip = IPv4Header(src=IP_A, dst=IP_B, protocol=IPPROTO_UDP,
                        total_length=33)
        udp = UdpHeader(src_port=1, dst_port=2, length=13)
        packed = udp.pack_with_checksum(ip.pseudo_header(13), b"hello")
        parsed, _ = UdpHeader.unpack(packed + b"hello")
        assert not parsed.verify(ip.pseudo_header(13), b"jello")

    def test_zero_checksum_means_unchecked(self):
        udp = UdpHeader(src_port=1, dst_port=2, length=8, checksum=0)
        assert udp.verify(b"\x00" * 12, b"")

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            UdpHeader(src_port=-1, dst_port=2)
        with pytest.raises(ValueError):
            UdpHeader(src_port=1, dst_port=70000)

    def test_bad_length_rejected(self):
        udp = UdpHeader(src_port=1, dst_port=2, length=100)
        with pytest.raises(ValueError):
            UdpHeader.unpack(udp.pack())


class TestTcp:
    def test_roundtrip(self):
        tcp = TcpHeader(src_port=5, dst_port=6, seq=1000, ack=2000,
                        flags=TCP_SYN | TCP_ACK, window=512)
        parsed, payload = TcpHeader.unpack(tcp.pack() + b"data")
        assert parsed.seq == 1000 and parsed.ack == 2000
        assert parsed.flag(TCP_SYN) and parsed.flag(TCP_ACK)
        assert parsed.window == 512
        assert payload == b"data"

    def test_options_roundtrip(self):
        tcp = TcpHeader(src_port=1, dst_port=2, options=b"\x02\x04\x05\xb4")
        parsed, _ = TcpHeader.unpack(tcp.pack())
        assert parsed.options == b"\x02\x04\x05\xb4"
        assert parsed.header_len == 24

    def test_checksum_verify(self):
        ip = IPv4Header(src=IP_A, dst=IP_B, protocol=IPPROTO_TCP,
                        total_length=20 + 20 + 3)
        tcp = TcpHeader(src_port=1, dst_port=2, seq=7)
        packed = tcp.pack_with_checksum(ip.pseudo_header(23), b"abc")
        parsed, _ = TcpHeader.unpack(packed + b"abc")
        assert parsed.verify(ip.pseudo_header(23), b"abc")
        assert not parsed.verify(ip.pseudo_header(23), b"abd")

    def test_seq_wraps_32_bits(self):
        tcp = TcpHeader(src_port=1, dst_port=2, seq=(1 << 32) + 5)
        parsed, _ = TcpHeader.unpack(tcp.pack())
        assert parsed.seq == 5

    def test_describe_flags(self):
        assert TcpHeader(src_port=1, dst_port=2,
                         flags=TCP_SYN | TCP_ACK).describe_flags() == \
            "SYN|ACK"
        assert TcpHeader(src_port=1, dst_port=2).describe_flags() == "-"


class TestWholeFrames:
    def test_udp_frame_roundtrip(self):
        frame = build_ipv4_udp_frame(MAC_A, MAC_B, IP_A, IP_B, 1111, 2222,
                                     b"payload!")
        parsed = parse_frame(frame)
        assert parsed.eth.src == MAC_A and parsed.eth.dst == MAC_B
        assert parsed.ip.src == IP_A and parsed.ip.dst == IP_B
        assert parsed.udp.src_port == 1111
        assert parsed.payload == b"payload!"

    def test_tcp_frame_roundtrip(self):
        tcp = TcpHeader(src_port=1, dst_port=2, seq=10, flags=TCP_ACK)
        frame = build_tcp_frame(MAC_A, MAC_B, IP_A, IP_B, tcp, b"xyz")
        parsed = parse_frame(frame)
        assert parsed.tcp.seq == 10
        assert parsed.payload == b"xyz"

    def test_corrupt_udp_payload_detected(self):
        frame = bytearray(
            build_ipv4_udp_frame(MAC_A, MAC_B, IP_A, IP_B, 1, 2, b"hello")
        )
        frame[-1] ^= 0x01
        with pytest.raises(ValueError, match="UDP checksum"):
            parse_frame(bytes(frame))

    @settings(max_examples=50)
    @given(
        payload=st.binary(max_size=2048),
        src_port=st.integers(0, 65535),
        dst_port=st.integers(0, 65535),
        vlan=st.one_of(st.none(), st.integers(0, 4095)),
    )
    def test_udp_frame_property_roundtrip(self, payload, src_port,
                                          dst_port, vlan):
        frame = build_ipv4_udp_frame(MAC_A, MAC_B, IP_A, IP_B, src_port,
                                     dst_port, payload, vlan=vlan)
        parsed = parse_frame(frame)
        assert parsed.payload == payload
        assert parsed.udp.src_port == src_port
        assert parsed.udp.dst_port == dst_port
        assert parsed.eth.vlan == vlan
