"""Tests for the network-facing log readback protocol (section V-F).

The paper: each log is associated with a port; the L4 RX tile directs
packets on that port to the log tile; the client reads one entry per
request and re-requests entries whose responses it never receives
(the request buffer is small and dropping).
"""

import struct

from repro.designs import FrameSink
from repro.designs.udp_stack import LoggedUdpEchoDesign
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)
from repro.tiles.logger import LogEntry

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


def make_design():
    design = LoggedUdpEchoDesign(udp_port=7)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    sink = FrameSink(design.eth_tx)
    design.sim.add(sink)
    return design, sink


def echo_frame(design, payload):
    return build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                CLIENT_IP, design.server_ip, 5555, 7,
                                payload)


def read_frame(design, index):
    return build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                CLIENT_IP, design.server_ip, 6001,
                                design.LOG_PORT,
                                struct.pack("!I", index))


def run_until(design, sink, count):
    design.sim.run_until(lambda: sink.count >= count, max_cycles=10000)


class TestLogReadback:
    def test_echo_still_works_through_log_tap(self):
        design, sink = make_design()
        design.inject(echo_frame(design, b"tapped"), 0)
        run_until(design, sink, 1)
        assert parse_frame(sink.frames[0][0]).payload == b"tapped"
        assert len(design.log.entries) == 1

    def test_read_one_entry_over_udp(self):
        design, sink = make_design()
        design.inject(echo_frame(design, b"x"), 0)
        run_until(design, sink, 1)
        design.inject(read_frame(design, 0), design.sim.cycle)
        run_until(design, sink, 2)
        reply = parse_frame(sink.frames[-1][0])
        index, total = struct.unpack_from("!II", reply.payload)
        assert (index, total) == (0, 1)
        entry = LogEntry.unpack(reply.payload[8:])
        assert entry.summary == "udp 5555->7"
        assert entry.direction == "rx"

    def test_whole_log_drained_entry_at_a_time(self):
        """The client-side protocol: iterate indices, re-request gaps."""
        design, sink = make_design()
        for i in range(5):
            design.inject(echo_frame(design, bytes([i]) * 4),
                          design.sim.cycle)
        run_until(design, sink, 5)
        entries = []
        index = 0
        while True:
            before = sink.count
            design.inject(read_frame(design, index), design.sim.cycle)
            run_until(design, sink, before + 1)
            reply = parse_frame(sink.frames[-1][0])
            _, total = struct.unpack_from("!II", reply.payload)
            body = reply.payload[8:]
            if body:
                entries.append(LogEntry.unpack(body))
            index += 1
            if index >= total:
                break
        # 5 echo packets logged (the read requests themselves are not
        # forwarded through the tap, so they do not pollute the log).
        assert len(entries) >= 5
        cycles = [entry.cycle for entry in entries]
        assert cycles == sorted(cycles)

    def test_read_past_end_returns_header_only(self):
        design, sink = make_design()
        design.inject(read_frame(design, 99), 0)
        run_until(design, sink, 1)
        reply = parse_frame(sink.frames[-1][0])
        index, total = struct.unpack_from("!II", reply.payload)
        assert (index, total) == (99, 0)
        assert reply.payload[8:] == b""

    def test_short_request_dropped(self):
        design, sink = make_design()
        bad = build_ipv4_udp_frame(CLIENT_MAC, design.server_mac,
                                   CLIENT_IP, design.server_ip, 6001,
                                   design.LOG_PORT, b"\x01")
        design.inject(bad, 0)
        design.sim.run(3000)
        assert sink.count == 0

    def test_design_is_deadlock_checked(self):
        from repro.analysis.deadlock import analyze_chains
        design, _ = make_design()
        assert analyze_chains(design.chains,
                              design.tile_coords) is None
