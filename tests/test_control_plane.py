"""Tests for the control plane: control NoC, endpoints, internal
controller, and the end-to-end client-migration reconfiguration."""

import json

from repro.control import (
    ControlAck,
    ControlPlane,
    CounterRead,
    CounterValue,
    TableUpdate,
    encode_control_rpc,
)
from repro.designs import FrameSink
from repro.designs.managed_stack import ManagedNatEchoDesign
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)
from repro.sim.kernel import CycleSimulator

CLIENT_MAC = MacAddress("02:00:00:00:00:01")
CLIENT_PHYS_IP = IPv4Address("10.0.0.1")
CLIENT_VIRT_IP = IPv4Address("172.16.0.1")
ADMIN_IP = IPv4Address("10.0.0.200")
ADMIN_MAC = MacAddress("02:00:00:00:00:aa")


class TestControlPlaneBasics:
    def build(self):
        sim = CycleSimulator()
        plane = ControlPlane(3, 1)
        a = plane.attach((0, 0), "a")
        b = plane.attach((2, 0), "b")
        plane.register(sim)
        return sim, plane, a, b

    def test_table_update_applied_and_acked(self):
        sim, plane, a, b = self.build()
        table = {}
        b.on_table("routes", lambda key, value: table.update({key: value}))
        a.send(b.coord, TableUpdate(table="routes", key="k", value="v",
                                    reply_to=a.coord, tag=7))
        sim.run_until(lambda: a.pop_replies() != [] or table,
                      max_cycles=200)
        sim.run(50)
        assert table == {"k": "v"}
        assert b.updates_applied == 1

    def test_unknown_table_nacked(self):
        sim, plane, a, b = self.build()
        replies = []
        a.send(b.coord, TableUpdate(table="nope", key="k", value="v",
                                    reply_to=a.coord, tag=1))
        for _ in range(200):
            sim.tick()
            replies.extend(a.pop_replies())
            if replies:
                break
        assert isinstance(replies[0], ControlAck)
        assert not replies[0].ok

    def test_counter_read(self):
        sim, plane, a, b = self.build()
        b.on_counter("hits", lambda: 42)
        a.send(b.coord, CounterRead(name="hits", reply_to=a.coord,
                                    tag=3))
        replies = []
        for _ in range(200):
            sim.tick()
            replies.extend(a.pop_replies())
            if replies:
                break
        assert replies[0] == CounterValue(name="hits", value=42, tag=3)

    def test_control_mesh_is_separate(self):
        """Control traffic rides its own routers (section IV-F)."""
        sim, plane, a, b = self.build()
        a.send(b.coord, TableUpdate(table="x", key=1, value=2,
                                    reply_to=a.coord))
        sim.run(100)
        assert plane.mesh.total_flits_forwarded > 0


def control_rpc_frame(design, target, table, key, value, tag=1,
                      op="update"):
    payload = encode_control_rpc(target, table, key, value, tag=tag,
                                 op=op)
    return build_ipv4_udp_frame(
        ADMIN_MAC, design.server_mac, ADMIN_IP, design.server_ip,
        6000, ManagedNatEchoDesign.CONTROL_PORT, payload,
    )


class TestManagedDesign:
    def build(self):
        design = ManagedNatEchoDesign(udp_port=7)
        design.map_client(CLIENT_VIRT_IP, CLIENT_PHYS_IP, CLIENT_MAC)
        design.eth_tx.add_neighbor(ADMIN_IP, ADMIN_MAC)
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        return design, sink

    def rpc(self, design, sink, frame, min_frames=1, max_cycles=5000):
        before = sink.count
        design.inject(frame, design.sim.cycle)
        design.sim.run_until(lambda: sink.count >= before + min_frames,
                             max_cycles=max_cycles)
        reply = parse_frame(sink.frames[-1][0])
        return json.loads(reply.payload.decode())

    def test_nat_update_rpc_roundtrip(self):
        """The paper's migration flow: RPC -> control NoC -> NAT table
        -> confirmation."""
        design, sink = self.build()
        new_phys = IPv4Address("10.0.0.99")
        response = self.rpc(design, sink, control_rpc_frame(
            design, design.nat_rx.coord, "nat",
            CLIENT_VIRT_IP, new_phys, tag=11,
        ))
        assert response["ok"] is True
        assert response["tag"] == 11
        assert design.nat_table.to_physical(CLIENT_VIRT_IP) == new_phys
        assert design.endpoints["nat"].updates_applied == 1

    def test_migration_redirects_data_plane(self):
        design, sink = self.build()
        new_phys = IPv4Address("10.0.0.99")
        # Move the client, then teach eth_tx its (unchanged) MAC.
        self.rpc(design, sink, control_rpc_frame(
            design, design.nat_rx.coord, "nat",
            CLIENT_VIRT_IP, new_phys, tag=1,
        ))
        self.rpc(design, sink, control_rpc_frame(
            design, design.eth_tx.coord, "neighbor",
            new_phys, CLIENT_MAC, tag=2,
        ))
        # Data from the new physical address now translates and echoes.
        data = build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, new_phys, design.server_ip,
            5555, 7, b"post-migration",
        )
        before = sink.count
        design.inject(data, design.sim.cycle)
        design.sim.run_until(lambda: sink.count > before,
                             max_cycles=5000)
        reply = parse_frame(sink.frames[-1][0])
        assert reply.payload == b"post-migration"
        assert reply.ip.dst == new_phys

    def test_unknown_table_reports_failure(self):
        design, sink = self.build()
        response = self.rpc(design, sink, control_rpc_frame(
            design, design.nat_rx.coord, "bogus", "k", "v", tag=5,
        ))
        assert response["ok"] is False
        assert "bogus" in response["detail"]

    def test_counter_telemetry_rpc(self):
        design, sink = self.build()
        # Generate one translation first.
        data = build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, CLIENT_PHYS_IP,
            design.server_ip, 5555, 7, b"x",
        )
        before = sink.count
        design.inject(data, 0)
        design.sim.run_until(lambda: sink.count > before,
                             max_cycles=5000)
        response = self.rpc(design, sink, control_rpc_frame(
            design, design.nat_rx.coord, "", "translations", "",
            tag=9, op="read_counter",
        ))
        assert response["ok"] is True
        assert response["value"] == 2  # rx + tx translation of the echo

    def test_udp_nexthop_rewrite_via_control_plane(self):
        """Runtime rewrite of the UDP port hash table (section V-B)."""
        design, sink = self.build()
        response = self.rpc(design, sink, control_rpc_frame(
            design, design.udp_rx.coord, "udp_nexthop",
            "8080", "4,0", tag=3,
        ))
        assert response["ok"] is True
        # Port 8080 now routes to the echo app tile at (4, 0).
        data = build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, CLIENT_PHYS_IP,
            design.server_ip, 5555, 8080, b"new-port",
        )
        before = sink.count
        design.inject(data, design.sim.cycle)
        design.sim.run_until(lambda: sink.count > before,
                             max_cycles=5000)
        reply = parse_frame(sink.frames[-1][0])
        assert reply.payload == b"new-port"
