"""Adaptive prune-cadence controller (repro.sim.kernel).

With no explicit ``prune_interval=``, the scheduled kernel adapts the
saturation-bypass pruning cadence at runtime: a saturated pruning tick
that finds nothing to prune doubles the interval (bounded by the cap),
while any tick that prunes — or any cycle below the saturation
threshold — resets it to the floor.  These tests pin the convergence
behaviour on saturated and idle-heavy loads, and that an explicit
setting never adapts.
"""

from repro.sim.kernel import CycleSimulator

FLOOR = CycleSimulator._PRUNE_FLOOR
CAP = CycleSimulator._PRUNE_CAP


class Worker:
    """Synthetic component whose idleness the test controls."""

    kernel_weight = 1

    def __init__(self, name: str, busy: bool = True) -> None:
        self.name = name
        self.busy = busy
        self.steps = 0

    def step(self, cycle: int) -> None:
        self.steps += 1

    def commit(self) -> None:
        pass

    def is_idle(self) -> bool:
        return not self.busy

    def next_event_cycle(self) -> int | None:
        return None


def make_sim(n_busy: int, n_idle: int = 0, **kwargs) -> tuple:
    sim = CycleSimulator(**kwargs)
    workers = [Worker(f"busy{i}") for i in range(n_busy)]
    workers += [Worker(f"lazy{i}", busy=False) for i in range(n_idle)]
    for worker in workers:
        sim.add(worker)
    return sim, workers


class TestSaturatedLoad:
    def test_interval_doubles_while_nothing_prunes(self):
        # 20 always-busy components: saturated every cycle, every
        # pruning tick finds nothing, so the cadence backs off
        # geometrically from the floor.
        sim, _ = make_sim(20)
        assert sim.prune_interval == FLOOR
        sim.run(100)  # pruning ticks at 0 and 64
        assert sim.prune_interval == FLOOR * 4

    def test_interval_converges_to_cap_and_stays(self):
        sim, workers = make_sim(20)
        sim.run(5000)
        assert sim.prune_interval == CAP
        sim.run(5000)  # further cap-aligned ticks must not overshoot
        assert sim.prune_interval == CAP
        # The bypass still stepped everything every cycle.
        assert all(w.steps == 10000 for w in workers)

    def test_draining_load_resets_to_floor(self):
        sim, workers = make_sim(20)
        sim.run(5000)
        assert sim.prune_interval == CAP
        for worker in workers:
            worker.busy = False
        # The next cap-aligned pruning tick (cycle 8192) prunes the
        # whole set and snaps the cadence back to the floor — the cap
        # bounds detection latency.
        sim.run(8200 - sim.cycle)
        assert sim.prune_interval == FLOOR
        assert sim.active_components == 0


class TestIdleHeavyLoad:
    def test_below_threshold_stays_at_floor(self):
        # 2 busy of 20: after the first tick prunes the sleepers the
        # active fraction sits below the saturation threshold, so the
        # bypass never engages and the cadence never leaves the floor.
        sim, workers = make_sim(2, n_idle=18)
        sim.run(1000)
        assert sim.prune_interval == FLOOR
        # Sleepers were stepped once (the pruning tick that caught
        # them), busy workers every cycle.
        assert all(w.steps == 1000 for w in workers if w.busy)
        assert all(w.steps == 1 for w in workers if not w.busy)

    def test_resaturation_restarts_from_floor(self):
        sim, workers = make_sim(20)
        sim.run(5000)
        assert sim.prune_interval == CAP
        for worker in workers:
            worker.busy = False
        sim.run(8200 - sim.cycle)
        assert sim.prune_interval == FLOOR
        # Load returns: the climb starts over from the floor, not from
        # the stale cap.
        for worker in workers:
            worker.busy = True
            sim.wake(worker)
        start = sim.cycle
        sim.run(100)
        assert FLOOR <= sim.prune_interval <= FLOOR * 8
        assert sim.cycle == start + 100


class TestExplicitSettingIsFixed:
    def test_explicit_interval_never_adapts(self):
        sim, _ = make_sim(20, prune_interval=100)
        sim.run(5000)
        assert sim.prune_interval == 100
