"""Tests for the NoC substrate: flits, messages, routing, routers, mesh."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import (
    Flit,
    FlitKind,
    Mesh,
    MessageAssembler,
    NocMessage,
    Port,
    xy_route,
    xy_route_path,
)
from repro.sim.kernel import CycleSimulator


class Drain:
    """Clocked helper that drains one local port into a list."""

    def __init__(self, port):
        self.port = port
        self.messages = []

    def step(self, cycle):
        message = self.port.receive()
        if message is not None:
            self.messages.append(message)

    def commit(self):
        pass


def build(width=4, height=4):
    sim = CycleSimulator()
    mesh = Mesh(width, height)
    return sim, mesh


class TestMessageEncoding:
    def test_flit_counts(self):
        msg = NocMessage(dst=(0, 0), src=(1, 1), metadata="m",
                         data=bytes(130))
        assert msg.n_data_flits == 3
        assert msg.n_flits == 5  # header + meta + 3 data

    def test_empty_message(self):
        msg = NocMessage(dst=(0, 0), src=(0, 0), n_meta_flits=0)
        flits = msg.to_flits()
        assert len(flits) == 1
        assert flits[0].is_head and flits[0].is_tail

    def test_flit_sequence_shape(self):
        msg = NocMessage(dst=(2, 0), src=(0, 0), metadata={"x": 1},
                         data=bytes(65))
        flits = msg.to_flits()
        assert [f.kind for f in flits] == [
            FlitKind.HEADER, FlitKind.METADATA, FlitKind.DATA,
            FlitKind.DATA,
        ]
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail
        assert sum(f.is_tail for f in flits) == 1

    def test_assembler_roundtrip(self):
        msg = NocMessage(dst=(1, 1), src=(0, 0), metadata=("a", 3),
                         data=bytes(range(200)) + bytes(56))
        assembler = MessageAssembler()
        out = None
        for flit in msg.to_flits():
            result = assembler.push(flit)
            if result is not None:
                out = result
        assert out is not None
        assert out.data == msg.data
        assert out.metadata == msg.metadata
        assert out.msg_id == msg.msg_id

    def test_assembler_rejects_interleaving(self):
        m1 = NocMessage(dst=(0, 0), src=(0, 0), data=bytes(128))
        m2 = NocMessage(dst=(0, 0), src=(0, 0), data=bytes(128))
        assembler = MessageAssembler()
        assembler.push(m1.to_flits()[0])
        with pytest.raises(ValueError):
            assembler.push(m2.to_flits()[0])

    def test_assembler_rejects_headless_body(self):
        msg = NocMessage(dst=(0, 0), src=(0, 0), data=bytes(64))
        with pytest.raises(ValueError):
            MessageAssembler().push(msg.to_flits()[1])

    def test_oversized_data_flit_rejected(self):
        with pytest.raises(ValueError):
            Flit(kind=FlitKind.DATA, is_head=False, is_tail=True,
                 dst=(0, 0), src=(0, 0), msg_id=1, payload=bytes(65))

    @given(data=st.binary(max_size=1000),
           n_meta=st.integers(0, 3))
    @settings(max_examples=50)
    def test_encode_decode_property(self, data, n_meta):
        msg = NocMessage(dst=(3, 2), src=(0, 1), metadata="meta",
                         data=data, n_meta_flits=n_meta)
        assembler = MessageAssembler()
        out = None
        for flit in msg.to_flits():
            out = assembler.push(flit) or out
        assert out.data == data
        assert out.n_meta_flits == n_meta


class TestXYRouting:
    def test_x_before_y(self):
        assert xy_route((0, 0), (2, 2)) == Port.EAST
        assert xy_route((2, 0), (2, 2)) == Port.SOUTH
        assert xy_route((2, 2), (0, 0)) == Port.WEST
        assert xy_route((0, 2), (0, 0)) == Port.NORTH
        assert xy_route((1, 1), (1, 1)) == Port.LOCAL

    def test_path_enumeration(self):
        path = xy_route_path((0, 0), (2, 1))
        assert path == [
            ((0, 0), Port.EAST),
            ((1, 0), Port.EAST),
            ((2, 0), Port.SOUTH),
            ((2, 1), Port.LOCAL),
        ]

    def test_path_to_self(self):
        assert xy_route_path((1, 1), (1, 1)) == [((1, 1), Port.LOCAL)]

    @given(sx=st.integers(0, 7), sy=st.integers(0, 7),
           dx=st.integers(0, 7), dy=st.integers(0, 7))
    def test_path_length_is_manhattan(self, sx, sy, dx, dy):
        path = xy_route_path((sx, sy), (dx, dy))
        assert len(path) == abs(sx - dx) + abs(sy - dy) + 1

    def test_opposite_ports(self):
        assert Port.EAST.opposite == Port.WEST
        assert Port.NORTH.opposite == Port.SOUTH


class TestMeshDelivery:
    def test_point_to_point(self):
        sim, mesh = build()
        src = mesh.attach((0, 0))
        dst_port = mesh.attach((3, 3))
        mesh.register(sim)
        drain = Drain(dst_port)
        sim.add(drain)
        src.send(NocMessage(dst=(3, 3), src=(0, 0), metadata="hi",
                            data=b"abc"))
        sim.run_until(lambda: drain.messages, max_cycles=100)
        assert drain.messages[0].metadata == "hi"
        assert drain.messages[0].data == b"abc"

    def test_point_to_point_ordering(self):
        """The NoC must be point-to-point ordered (paper section IV-A)."""
        sim, mesh = build()
        src = mesh.attach((0, 0))
        dst_port = mesh.attach((3, 2))
        mesh.register(sim)
        drain = Drain(dst_port)
        sim.add(drain)
        for i in range(20):
            src.send(NocMessage(dst=(3, 2), src=(0, 0), metadata=i,
                                data=bytes(i * 16)))
        sim.run_until(lambda: len(drain.messages) == 20, max_cycles=2000)
        assert [m.metadata for m in drain.messages] == list(range(20))

    def test_many_to_one_all_arrive(self):
        sim, mesh = build()
        senders = [mesh.attach((x, 0)) for x in range(4)]
        sink_port = mesh.attach((3, 3))
        mesh.register(sim)
        drain = Drain(sink_port)
        sim.add(drain)
        for i, sender in enumerate(senders):
            for j in range(5):
                sender.send(NocMessage(dst=(3, 3), src=sender.coord,
                                       metadata=(i, j), data=bytes(100)))
        sim.run_until(lambda: len(drain.messages) == 20, max_cycles=5000)
        # per-sender order preserved even under contention
        for i in range(4):
            seq = [m.metadata[1] for m in drain.messages
                   if m.metadata[0] == i]
            assert seq == sorted(seq)

    def test_wormhole_no_interleaving_at_ejection(self):
        """Body flits of two messages never interleave on one link."""
        sim, mesh = build()
        a = mesh.attach((0, 0))
        b = mesh.attach((0, 1))
        sink_port = mesh.attach((3, 0))
        mesh.register(sim)
        drain = Drain(sink_port)  # raises inside assembler on interleave
        sim.add(drain)
        for sender in (a, b):
            for _ in range(5):
                sender.send(NocMessage(dst=(3, 0), src=sender.coord,
                                       data=bytes(512)))
        sim.run_until(lambda: len(drain.messages) == 10, max_cycles=5000)

    def test_all_pairs_delivery(self):
        sim, mesh = build(3, 3)
        ports = {coord: mesh.attach(coord) for coord in mesh.routers}
        mesh.register(sim)
        drains = {coord: Drain(port) for coord, port in ports.items()}
        sim.add_all(drains.values())
        expected = 0
        for src_coord, port in ports.items():
            for dst_coord in ports:
                if src_coord == dst_coord:
                    continue
                port.send(NocMessage(dst=dst_coord, src=src_coord,
                                     metadata=src_coord, data=b"x"))
                expected += 1
        sim.run_until(
            lambda: sum(len(d.messages) for d in drains.values())
            == expected,
            max_cycles=5000,
        )
        for dst_coord, drain in drains.items():
            sources = {m.metadata for m in drain.messages}
            assert len(sources) == 8  # heard from everyone else

    def test_throughput_one_flit_per_cycle(self):
        """A single stream sustains one flit per link per cycle."""
        sim, mesh = build(2, 1)
        src = mesh.attach((0, 0))
        dst_port = mesh.attach((1, 0), eject_depth=8)
        mesh.register(sim)
        drain = Drain(dst_port)
        sim.add(drain)
        n_messages = 20
        flits_each = 1 + 1 + 4  # header + meta + 4 data
        for i in range(n_messages):
            src.send(NocMessage(dst=(1, 0), src=(0, 0), metadata=i,
                                data=bytes(256)))
        cycles = sim.run_until(
            lambda: len(drain.messages) == n_messages, max_cycles=500
        )
        # Perfect streaming would take n*flits cycles (+ small constant).
        assert cycles <= n_messages * flits_each + 10

    def test_backpressure_no_loss(self):
        """A slow consumer loses nothing; flow control backpressures."""
        sim, mesh = build(2, 1)
        src = mesh.attach((0, 0))
        dst_port = mesh.attach((1, 0), eject_depth=2)
        mesh.register(sim)

        class SlowDrain:
            def __init__(self, port):
                self.port = port
                self.messages = []
                self._tick = 0

            def step(self, cycle):
                self._tick += 1
                if self._tick % 7 == 0:  # drain every 7th cycle only
                    message = self.port.receive()
                    if message is not None:
                        self.messages.append(message)

            def commit(self):
                pass

        drain = SlowDrain(dst_port)
        sim.add(drain)
        for i in range(10):
            src.send(NocMessage(dst=(1, 0), src=(0, 0), metadata=i,
                                data=bytes(128)))
        sim.run_until(lambda: len(drain.messages) == 10, max_cycles=5000)
        assert [m.metadata for m in drain.messages] == list(range(10))

    def test_bad_attach_coord(self):
        _, mesh = build(2, 2)
        with pytest.raises(KeyError):
            mesh.attach((5, 5))

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            Mesh(0, 3)

    def test_attach_is_idempotent(self):
        _, mesh = build(2, 2)
        assert mesh.attach((0, 0)) is mesh.attach((0, 0))

    def test_router_stats_count_flits(self):
        sim, mesh = build(2, 1)
        src = mesh.attach((0, 0))
        dst_port = mesh.attach((1, 0))
        mesh.register(sim)
        drain = Drain(dst_port)
        sim.add(drain)
        src.send(NocMessage(dst=(1, 0), src=(0, 0), data=bytes(64)))
        sim.run_until(lambda: drain.messages, max_cycles=100)
        # 3 flits crossed router (0,0) east and router (1,0) local.
        assert mesh.routers[(0, 0)].flits_per_output[Port.EAST] == 3
        assert mesh.routers[(1, 0)].flits_per_output[Port.LOCAL] == 3


class TestYxRouting:
    def test_yx_routes_y_first(self):
        from repro.noc.routing import yx_route, yx_route_path
        assert yx_route((0, 0), (2, 2)) == Port.SOUTH
        assert yx_route((0, 2), (2, 2)) == Port.EAST
        path = yx_route_path((0, 0), (2, 1))
        assert path == [
            ((0, 0), Port.SOUTH),
            ((0, 1), Port.EAST),
            ((1, 1), Port.EAST),
            ((2, 1), Port.LOCAL),
        ]

    def test_routings_take_different_links(self):
        from repro.noc.routing import xy_route_path, yx_route_path
        xy = set(xy_route_path((0, 0), (2, 2)))
        yx = set(yx_route_path((0, 0), (2, 2)))
        assert xy != yx
        # Same endpoints, same hop count, different corners.
        assert len(xy) == len(yx)

    def test_yx_mesh_delivers_in_order(self):
        sim = CycleSimulator()
        mesh = Mesh(3, 3, routing="yx")
        src = mesh.attach((0, 0))
        dst_port = mesh.attach((2, 2))
        mesh.register(sim)
        drain = Drain(dst_port)
        sim.add(drain)
        for i in range(10):
            src.send(NocMessage(dst=(2, 2), src=(0, 0), metadata=i,
                                data=bytes(64)))
        sim.run_until(lambda: len(drain.messages) == 10,
                      max_cycles=2000)
        assert [m.metadata for m in drain.messages] == list(range(10))

    def test_bad_routing_name(self):
        with pytest.raises(ValueError, match="unknown routing"):
            Mesh(2, 2, routing="adaptive")

    def test_analysis_respects_route_function(self):
        """Safety is a property of placement *and* routing: the Fig 5b
        placement is safe under XY, and an analysis under YX of a
        vertically-laid-out chain shows the dual behaviour."""
        from repro.analysis.deadlock import analyze_chains
        from repro.noc.routing import yx_route

        # Fig 5a rotated 90 degrees: a column layout that reuses a
        # vertical link under YX routing.
        coords = {"eth": (0, 0), "ip": (0, 2), "udp": (0, 1),
                  "app": (0, 3)}
        chain = [["eth", "ip", "udp", "app"]]
        assert analyze_chains(chain, coords,
                              route_fn=yx_route) is not None
        safe = {"eth": (0, 0), "ip": (0, 1), "udp": (0, 2),
                "app": (0, 3)}
        assert analyze_chains(chain, safe, route_fn=yx_route) is None
