"""Tests for the tile framework and protocol tiles."""

import pytest

from repro.designs import FrameSink, FrameSource, GoodputMeter, UdpEchoDesign
from repro.noc import Mesh, NocMessage
from repro.packet import (
    IPv4Address,
    MacAddress,
    build_ipv4_udp_frame,
    parse_frame,
)
from repro.sim.kernel import CycleSimulator
from repro.tiles.base import NextHopTable, Tile

CLIENT_MAC = MacAddress("02:00:00:00:00:01")
CLIENT_IP = IPv4Address("10.0.0.1")


class TestNextHopTable:
    def test_single_destination(self):
        table = NextHopTable()
        table.set_entry(17, (1, 0))
        assert table.lookup(17) == (1, 0)

    def test_unmatched_drops(self):
        table = NextHopTable()
        assert table.lookup(99) is None
        assert table.drops == 1

    def test_round_robin(self):
        table = NextHopTable(policy="round_robin")
        table.set_entry("app", [(0, 0), (1, 0), (2, 0)])
        picks = [table.lookup("app") for _ in range(6)]
        assert picks == [(0, 0), (1, 0), (2, 0)] * 2

    def test_flow_hash_is_sticky(self):
        table = NextHopTable(policy="flow_hash")
        table.set_entry(7, [(0, 0), (1, 0), (2, 0), (3, 0)])
        flow = (1, 2, 3, 4)
        first = table.lookup(7, flow_key=flow)
        assert all(table.lookup(7, flow_key=flow) == first
                   for _ in range(10))

    def test_flow_hash_spreads(self):
        table = NextHopTable(policy="flow_hash")
        table.set_entry(7, [(0, 0), (1, 0), (2, 0), (3, 0)])
        picks = {table.lookup(7, flow_key=(0, 0, p, 7))
                 for p in range(100)}
        assert len(picks) >= 3  # hash spreads across replicas

    def test_rewrite_entry(self):
        """The control plane can rewrite entries at runtime."""
        table = NextHopTable()
        table.set_entry(7, (1, 0))
        table.set_entry(7, (2, 0))
        assert table.lookup(7) == (2, 0)

    def test_shrinking_entry_does_not_break_round_robin(self):
        """Regression: rewriting an entry with fewer destinations used
        to leave the round-robin pointer past the end of the new list,
        so the next lookup raised IndexError.  The pointer must be
        reduced modulo the current length instead."""
        table = NextHopTable(policy="round_robin")
        table.set_entry("app", [(0, 0), (1, 0), (2, 0)])
        table.lookup("app")
        table.lookup("app")  # pointer now at index 2
        table.set_entry("app", [(5, 0), (6, 0)])  # control-plane shrink
        picks = [table.lookup("app") for _ in range(4)]
        assert picks == [(5, 0), (6, 0), (5, 0), (6, 0)]

    def test_shrink_to_single_destination(self):
        table = NextHopTable(policy="round_robin")
        table.set_entry("app", [(0, 0), (1, 0), (2, 0)])
        for _ in range(2):
            table.lookup("app")
        table.set_entry("app", [(9, 0)])
        assert table.lookup("app") == (9, 0)
        assert table.lookup("app") == (9, 0)

    def test_remove_entry(self):
        table = NextHopTable()
        table.set_entry(7, (1, 0))
        table.remove_entry(7)
        assert table.lookup(7) is None

    def test_empty_destination_rejected(self):
        with pytest.raises(ValueError):
            NextHopTable().set_entry(7, [])

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            NextHopTable(policy="magic")


class PassThrough(Tile):
    """Minimal tile: forwards every message to a fixed destination."""

    def __init__(self, name, mesh, coord, dest, **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.dest = dest
        self.seen = []

    def handle_message(self, message, cycle):
        self.seen.append((cycle, message))
        return [self.make_message(self.dest, metadata=message.metadata,
                                  data=message.data)]


class Collector(Tile):
    def __init__(self, name, mesh, coord, **kwargs):
        super().__init__(name, mesh, coord, **kwargs)
        self.received = []

    def handle_message(self, message, cycle):
        self.received.append((cycle, message))
        return []


def chain_fixture(occupancy=13, parse_latency=9):
    sim = CycleSimulator()
    mesh = Mesh(3, 1)
    src_port = mesh.attach((0, 0))
    middle = PassThrough("mid", mesh, (1, 0), dest=(2, 0),
                         occupancy=occupancy, parse_latency=parse_latency)
    sink = Collector("sink", mesh, (2, 0), occupancy=1, parse_latency=1)
    mesh.register(sim)
    sim.add_all([middle, sink])
    return sim, src_port, middle, sink


class TestTileEngine:
    def test_message_flows_through(self):
        sim, src, middle, sink = chain_fixture()
        src.send(NocMessage(dst=(1, 0), src=(0, 0), metadata="m",
                            data=b"abc"))
        sim.run_until(lambda: sink.received, max_cycles=200)
        _, message = sink.received[0]
        assert message.metadata == "m"
        assert message.data == b"abc"

    def test_occupancy_paces_throughput(self):
        """Messages leave the engine spaced by its occupancy."""
        sim, src, middle, sink = chain_fixture(occupancy=20)
        for i in range(5):
            src.send(NocMessage(dst=(1, 0), src=(0, 0), metadata=i,
                                data=bytes(64)))
        sim.run_until(lambda: len(sink.received) == 5, max_cycles=1000)
        arrivals = [cycle for cycle, _ in sink.received]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(gap >= 20 for gap in gaps)
        assert all(gap <= 22 for gap in gaps)  # no extra bubbles

    def test_large_messages_stream_at_flit_rate(self):
        sim, src, middle, sink = chain_fixture(occupancy=13)
        n_flits = 2 + 16  # 1 KiB of data: flit stream > occupancy (13)
        for i in range(5):
            src.send(NocMessage(dst=(1, 0), src=(0, 0), metadata=i,
                                data=bytes(1024)))
        sim.run_until(lambda: len(sink.received) == 5, max_cycles=1000)
        arrivals = [cycle for cycle, _ in sink.received]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(n_flits <= gap <= n_flits + 2 for gap in gaps)

    def test_parse_latency_sets_transit(self):
        sim, src, middle, sink = chain_fixture(parse_latency=15)
        src.send(NocMessage(dst=(1, 0), src=(0, 0), data=b""))
        sim.run_until(lambda: sink.received, max_cycles=200)
        fast_sim, fast_src, _, fast_sink = chain_fixture(parse_latency=1)
        fast_src.send(NocMessage(dst=(1, 0), src=(0, 0), data=b""))
        fast_sim.run_until(lambda: fast_sink.received, max_cycles=200)
        slow = sink.received[0][0]
        fast = fast_sink.received[0][0]
        assert slow - fast == 14

    def test_stats_counters(self):
        sim, src, middle, sink = chain_fixture()
        src.send(NocMessage(dst=(1, 0), src=(0, 0), data=bytes(100)))
        sim.run_until(lambda: sink.received, max_cycles=200)
        assert middle.messages_in == 1
        assert middle.messages_out == 1
        assert middle.bytes_in == 100
        assert middle.bytes_out == 100

    def test_drop_counts(self):
        class Dropper(Tile):
            def handle_message(self, message, cycle):
                return self.drop(message)

        sim = CycleSimulator()
        mesh = Mesh(2, 1)
        src = mesh.attach((0, 0))
        dropper = Dropper("d", mesh, (1, 0))
        mesh.register(sim)
        sim.add(dropper)
        src.send(NocMessage(dst=(1, 0), src=(0, 0), data=b"x"))
        sim.run_until(lambda: dropper.drops == 1, max_cycles=200)
        assert dropper.messages_out == 0


class TestUdpEchoDesign:
    def make_design(self, **kwargs):
        design = UdpEchoDesign(udp_port=7, **kwargs)
        design.add_client(CLIENT_IP, CLIENT_MAC)
        return design

    def request(self, design, payload, src_port=5555):
        return build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, CLIENT_IP, design.server_ip,
            src_port, 7, payload,
        )

    def run_one(self, design, frame):
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        design.inject(frame, cycle=0)
        design.sim.run_until(lambda: sink.count >= 1, max_cycles=2000)
        return sink.frames[0][0]

    def test_end_to_end_echo(self):
        design = self.make_design()
        reply = self.run_one(design, self.request(design, b"ping"))
        parsed = parse_frame(reply)
        assert parsed.payload == b"ping"
        assert parsed.ip.src == design.server_ip
        assert parsed.ip.dst == CLIENT_IP
        assert parsed.udp.src_port == 7
        assert parsed.udp.dst_port == 5555
        assert parsed.eth.dst == CLIENT_MAC

    def test_reply_checksums_valid(self):
        design = self.make_design()
        reply = self.run_one(design, self.request(design, bytes(300)))
        parse_frame(reply)  # raises on any checksum failure

    def test_latency_microbenchmark(self):
        """The paper reports 92 cycles / 368 ns for a 1-byte echo."""
        design = self.make_design(line_rate_bytes_per_cycle=None)
        self.run_one(design, self.request(design, b"x"))
        assert abs(design.eth_tx.last_transit_cycles - 92) <= 3

    def test_corrupt_frame_dropped_at_udp(self):
        design = self.make_design()
        frame = bytearray(self.request(design, b"hello"))
        frame[-1] ^= 0xFF
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        design.inject(bytes(frame), 0)
        design.sim.run(500)
        assert sink.count == 0
        assert design.udp_rx.checksum_errors == 1

    def test_unknown_port_dropped(self):
        design = self.make_design()
        frame = build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, CLIENT_IP, design.server_ip,
            5555, 9999, b"hi",
        )
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        design.inject(frame, 0)
        design.sim.run(500)
        assert sink.count == 0
        assert design.udp_rx.drops == 1

    def test_wrong_ip_dropped(self):
        design = self.make_design()
        frame = build_ipv4_udp_frame(
            CLIENT_MAC, design.server_mac, CLIENT_IP,
            IPv4Address("10.9.9.9"), 5555, 7, b"hi",
        )
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        design.inject(frame, 0)
        design.sim.run(500)
        assert sink.count == 0
        assert design.ip_rx.drops == 1

    def test_pipelining_many_requests(self):
        design = self.make_design(line_rate_bytes_per_cycle=None)
        sink = FrameSink(design.eth_tx)
        design.sim.add(sink)
        source = FrameSource(design.inject,
                             lambda i: self.request(design, bytes(64)),
                             rate=None, count=100)
        design.sim.add(source)
        design.sim.run_until(lambda: sink.count == 100, max_cycles=10000)
        assert design.app.requests == 100

    def test_small_packet_goodput_matches_paper(self):
        """Paper: ~9 Gbps / 18392 KReq/s of 64 B packets (section VII-C)."""
        design = self.make_design(line_rate_bytes_per_cycle=None)
        sink = FrameSink(design.eth_tx, keep_frames=False)
        meter = GoodputMeter(sink, warmup_frames=50)
        source = FrameSource(design.inject,
                             lambda i: self.request(design, bytes(64)),
                             rate=None)
        design.sim.add(source)
        design.sim.add(sink)
        for _ in range(15000):
            design.sim.tick()
            meter.maybe_start()
        assert 8.0 <= meter.goodput_gbps() <= 11.0
        assert 17000 <= meter.kreqs() <= 20500
