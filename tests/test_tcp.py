"""Tests for the TCP engine: flow state, handshake, data transfer,
loss recovery, flow control, and the application interface."""

from hypothesis import given
from hypothesis import strategies as st

from repro.designs.tcp_stack import TcpServerDesign
from repro.packet import IPv4Address, MacAddress
from repro.tcp.flow import (
    FlowTable,
    TcpState,
    seq_add,
    seq_diff,
    seq_ge,
)
from repro.tcp.peer import PeerNetwork, SoftTcpPeer
from repro.tcp.app import TcpSinkAppTile, TcpSourceAppTile

CLIENT_IP = IPv4Address("10.0.0.1")
CLIENT_MAC = MacAddress("02:00:00:00:00:01")


class TestSeqArithmetic:
    def test_wraparound_add(self):
        assert seq_add(0xFFFFFFFF, 1) == 0
        assert seq_add(0xFFFFFFF0, 0x20) == 0x10

    def test_signed_diff(self):
        assert seq_diff(5, 3) == 2
        assert seq_diff(3, 5) == -2
        assert seq_diff(0x10, 0xFFFFFFF0) == 0x20  # across the wrap

    def test_ge_across_wrap(self):
        assert seq_ge(0x10, 0xFFFFFFF0)
        assert not seq_ge(0xFFFFFFF0, 0x10)

    @given(a=st.integers(0, 2**32 - 1), delta=st.integers(0, 2**30))
    def test_diff_inverts_add(self, a, delta):
        assert seq_diff(seq_add(a, delta), a) == delta


class TestFlowTable:
    def test_create_and_lookup(self):
        table = FlowTable()
        tup = (1, 2, 3, 4)
        flow_id = table.create(tup)
        assert table.lookup(tup) == flow_id
        assert flow_id in table.rx and flow_id in table.tx

    def test_capacity_limit(self):
        table = FlowTable(max_flows=2)
        assert table.create((1, 1, 1, 1)) is not None
        assert table.create((2, 2, 2, 2)) is not None
        assert table.create((3, 3, 3, 3)) is None

    def test_release_frees_slot(self):
        table = FlowTable(max_flows=1)
        flow_id = table.create((1, 1, 1, 1))
        table.release(flow_id)
        assert table.lookup((1, 1, 1, 1)) is None
        assert table.create((2, 2, 2, 2)) is not None

    def test_rx_window_shrinks_with_unread_data(self):
        table = FlowTable()
        flow_id = table.create((1, 2, 3, 4))
        rx = table.rx[flow_id]
        rx.rx_buf_size = 1000
        rx.irs = 100
        rx.rcv_nxt = seq_add(101, 400)  # 400 payload bytes arrived
        assert rx.rx_stream_received == 400
        assert rx.rx_window == 600
        rx.app_read_offset = 400
        assert rx.rx_window == 1000


def make_design(request_size=16, **design_kwargs):
    design = TcpServerDesign(tcp_port=5000, request_size=request_size,
                             **design_kwargs)
    design.add_client(CLIENT_IP, CLIENT_MAC)
    return design


def make_pair(request_size=16, wire_cycles=50, **design_kwargs):
    design = make_design(request_size=request_size, **design_kwargs)
    peer = SoftTcpPeer(design, CLIENT_IP, CLIENT_MAC, design.server_ip,
                       5000, wire_cycles=wire_cycles)
    design.sim.add(peer)
    return design, peer


class TestHandshake:
    def test_three_way_handshake(self):
        design, peer = make_pair()
        peer.connect()
        design.sim.run_until(lambda: peer.established, max_cycles=20000)
        flow_id = design.flows.lookup(
            (int(CLIENT_IP), peer.src_port, int(design.server_ip), 5000)
        )
        assert flow_id is not None
        # The server reaches ESTABLISHED once the peer's ACK lands, and
        # the app tile is notified a few NoC hops later.
        design.sim.run_until(
            lambda: design.flows.rx[flow_id].state
            == TcpState.ESTABLISHED,
            max_cycles=20000,
        )
        design.sim.run_until(lambda: design.app.connections == 1,
                             max_cycles=20000)

    def test_syn_to_closed_port_ignored(self):
        design, peer = make_pair()
        peer.server_port = 9999  # nothing listens there
        peer.connect()
        design.sim.run(5000)
        assert not peer.established
        assert len(design.flows) == 0

    def test_syn_retransmission_tolerated(self):
        """A duplicated SYN must not corrupt the flow state."""
        design, peer = make_pair()
        original_inject = design.inject
        frames = []

        def duplicate_syn(frame, cycle):
            original_inject(frame, cycle)
            if not frames:  # duplicate only the very first frame (SYN)
                frames.append(frame)
                original_inject(frame, cycle + 3)

        design.inject = duplicate_syn
        peer.connect()
        design.sim.run_until(lambda: peer.established, max_cycles=20000)
        peer.send(b"x" * 16)
        design.sim.run_until(lambda: len(peer.received) >= 16,
                             max_cycles=100000)
        assert len(design.flows) == 1

    def test_connection_table_full(self):
        design = make_design(max_flows=1)
        network = PeerNetwork(design)
        design.sim.add(network)
        peers = []
        for i in range(2):
            peer = SoftTcpPeer(design, CLIENT_IP, CLIENT_MAC,
                               design.server_ip, 5000,
                               src_port=40000 + i, wire_cycles=50)
            network.register(peer)
            design.sim.add(peer)
            peer.connect()
            peers.append(peer)
        design.sim.run(30000)
        assert sum(p.established for p in peers) == 1


class TestDataTransfer:
    def test_echo_roundtrip(self):
        design, peer = make_pair(request_size=16)
        peer.connect()
        peer.send(b"0123456789abcdef")
        design.sim.run_until(lambda: len(peer.received) >= 16,
                             max_cycles=200000)
        assert bytes(peer.received) == b"0123456789abcdef"

    def test_many_requests_in_order(self):
        design, peer = make_pair(request_size=8)
        peer.connect()
        expected = bytearray()
        for i in range(20):
            chunk = bytes([i]) * 8
            peer.send(chunk)
            expected.extend(chunk)
        design.sim.run_until(
            lambda: len(peer.received) >= len(expected),
            max_cycles=500000,
        )
        assert bytes(peer.received) == bytes(expected)

    def test_request_spanning_segments(self):
        """A request larger than one segment is reassembled."""
        design, peer = make_pair(request_size=4096)
        peer.mss = 1000  # force multi-segment requests
        peer.connect()
        payload = bytes(range(256)) * 16
        peer.send(payload)
        design.sim.run_until(lambda: len(peer.received) >= 4096,
                             max_cycles=500000)
        assert bytes(peer.received) == payload

    def test_stream_wraps_ring_buffer(self):
        """A stream longer than the 64 KiB ring exercises the wrap
        (split RxNotify / TxGrant) paths."""
        design, peer = make_pair(request_size=4096)
        peer.connect()
        total = 80 * 1024  # > one ring
        pattern = bytes(range(251))
        payload = (pattern * (total // len(pattern) + 1))[:total]
        peer.send(payload)
        design.sim.run_until(lambda: len(peer.received) >= total,
                             max_cycles=3_000_000)
        assert bytes(peer.received[:total]) == payload

    def test_concurrent_connections(self):
        design = make_design(request_size=16)
        network = PeerNetwork(design)
        design.sim.add(network)
        peers = []
        for i in range(3):
            peer = SoftTcpPeer(design, CLIENT_IP, CLIENT_MAC,
                               design.server_ip, 5000,
                               src_port=41000 + i, wire_cycles=50,
                               iss=9000 + 777 * i)
            network.register(peer)
            design.sim.add(peer)
            peer.connect()
            peer.send(bytes([i]) * 16)
            peers.append(peer)
        design.sim.run_until(
            lambda: all(len(p.received) >= 16 for p in peers),
            max_cycles=500000,
        )
        for i, peer in enumerate(peers):
            assert bytes(peer.received) == bytes([i]) * 16


class TestLossRecovery:
    def test_server_ignores_out_of_order(self):
        """An out-of-order segment is dropped and re-ACKed, not stored."""
        design, peer = make_pair(request_size=16)
        original_inject = design.inject
        state = {"dropped": False}

        def drop_first_data(frame, cycle):
            if len(frame) > 60 and not state["dropped"]:
                state["dropped"] = True  # swallow first data segment
                return
            original_inject(frame, cycle)

        design.inject = drop_first_data
        peer.rto_cycles = 3000  # fast client RTO for the test
        peer.connect()
        peer.send(b"Y" * 16)
        design.sim.run_until(lambda: len(peer.received) >= 16,
                             max_cycles=500000)
        assert bytes(peer.received) == b"Y" * 16
        assert peer.retransmits >= 1

    def test_server_retransmits_lost_reply(self):
        """Dropping the server's data segment forces its RTO path."""
        design, peer = make_pair(request_size=16)
        state = {"dropped": False}
        original_handle = peer._handle_frame

        def drop_first_server_data(frame, cycle):
            if len(frame) > 60 and not state["dropped"]:
                state["dropped"] = True
                return
            original_handle(frame, cycle)

        peer._handle_frame = drop_first_server_data
        peer.connect()
        peer.send(b"Z" * 16)
        design.sim.run_until(lambda: len(peer.received) >= 16,
                             max_cycles=1_000_000)
        assert bytes(peer.received) == b"Z" * 16
        flow_id = design.flows.flows()[0]
        assert design.flows.tx[flow_id].retransmits >= 1

    def test_fast_retransmit_on_dup_acks(self):
        """Three duplicate ACKs trigger fast retransmit without waiting
        for the RTO (section V-D)."""
        design, peer = make_pair(request_size=16, wire_cycles=20)
        state = {"dropped": False}
        original_handle = peer._handle_frame

        def drop_first_server_data(frame, cycle):
            if len(frame) > 60 and not state["dropped"]:
                state["dropped"] = True
                return
            original_handle(frame, cycle)

        peer._handle_frame = drop_first_server_data
        peer.connect()
        design.sim.run_until(lambda: peer.established, max_cycles=20000)
        # Each request generates a dup-ACK for the missing reply bytes.
        for _ in range(6):
            peer.send(b"Q" * 16)
        design.sim.run_until(lambda: len(peer.received) >= 96,
                             max_cycles=1_000_000)
        flow_id = design.flows.flows()[0]
        assert design.flows.tx[flow_id].fast_retransmits >= 1

    def test_corrupted_segment_dropped(self):
        design, peer = make_pair(request_size=16)
        original_inject = design.inject
        state = {"corrupted": False}

        def corrupt_first_data(frame, cycle):
            if len(frame) > 60 and not state["corrupted"]:
                state["corrupted"] = True
                frame = frame[:-1] + bytes([frame[-1] ^ 0xFF])
            original_inject(frame, cycle)

        design.inject = corrupt_first_data
        peer.rto_cycles = 3000
        peer.connect()
        peer.send(b"C" * 16)
        design.sim.run_until(lambda: len(peer.received) >= 16,
                             max_cycles=500000)
        assert bytes(peer.received) == b"C" * 16
        assert design.tcp_rx.checksum_errors == 1


class TestFlowControl:
    def test_window_closes_when_app_stalls(self):
        """A sink app that never frees the window throttles the peer."""

        class StalledSink(TcpSinkAppTile):
            def _handle_rx_data(self, resp, data, cycle):
                return []  # never RxComplete, never re-request

        design, peer = make_pair(app_tile_cls=StalledSink,
                                 request_size=1024)
        peer.connect()
        peer.send(bytes(300 * 1024))  # 5x the receive ring
        design.sim.run(400_000)
        flow_id = design.flows.flows()[0]
        rx = design.flows.rx[flow_id]
        # The server accepted at most one ring worth of data.
        assert rx.rx_stream_received <= rx.rx_buf_size
        # And the peer still has unsent data (it respected the window).
        assert len(peer.send_stream) > 0

    def test_fin_moves_to_close_wait(self):
        design, peer = make_pair(request_size=16)
        peer.connect()
        peer.send(b"f" * 16)
        design.sim.run_until(lambda: len(peer.received) >= 16,
                             max_cycles=200000)
        peer.close()
        flow_id = design.flows.flows()[0]
        design.sim.run_until(
            lambda: design.flows.rx[flow_id].state
            == TcpState.CLOSE_WAIT,
            max_cycles=200000,
        )
        assert design.flows.rx[flow_id].fin_received


class TestLoggingTiles:
    def test_tcp_headers_logged_both_directions(self):
        design, peer = make_pair(request_size=16, with_logging=True)
        peer.connect()
        peer.send(b"L" * 16)
        design.sim.run_until(lambda: len(peer.received) >= 16,
                             max_cycles=500000)
        # SYN + data (the handshake ACK piggybacks on the first data
        # segment when the client has data queued).
        assert len(design.log_rx.entries) >= 2
        assert len(design.log_tx.entries) >= 2  # SYN-ACK, data, ACKs
        assert all(e.direction == "rx" for e in design.log_rx.entries)
        assert all(e.direction == "tx" for e in design.log_tx.entries)
        flags = [e.flags for e in design.log_rx.entries]
        assert any("SYN" in f for f in flags)
        # Cycle timestamps are usable for replay ordering.
        cycles = [e.cycle for e in design.log_rx.entries]
        assert cycles == sorted(cycles)


class TestSourceApp:
    def test_fpga_sends_stream_to_peer(self):
        """The Fig 9 'FPGA send' direction: a source app streams out."""
        total = 64 * 1024
        design, peer = make_pair(
            app_tile_cls=TcpSourceAppTile, request_size=64,
            chunk_size=8192, total_bytes=total,
        )
        peer.connect()
        design.sim.run_until(lambda: len(peer.received) >= total,
                             max_cycles=2_000_000)
        assert len(peer.received) == total
