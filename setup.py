"""Shim for environments without the `wheel` package (offline install).

`pip install -e . --no-build-isolation` on this box lacks bdist_wheel, so
`python setup.py develop` / this shim keeps the editable install working.
"""
from setuptools import setup

setup()
